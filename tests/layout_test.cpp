//===- layout_test.cpp - Physical layouts and traversal reversal --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Section 5.3: "the physical array itself is not necessarily reshaped ...
// of course, nothing prevents us from reshaping" — tests for the tiled
// block-major storage, plus the Section 8 triangular-solve remark where
// only the Reversed block walk is legal.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <set>

using namespace shackle;

namespace {

TEST(TiledLayout, OffsetsArePermutationOfRange) {
  BenchSpec Spec = makeMatMulTiled(4);
  ProgramInstance Inst(*Spec.Prog, {10}); // Ragged: 10 = 2*4 + 2.
  // Grid is 3x3 tiles of 16 slots = 144 physical slots.
  EXPECT_EQ(Inst.buffer(0).size(), 144u);
  std::set<int64_t> Seen;
  for (int64_t I = 0; I < 10; ++I)
    for (int64_t J = 0; J < 10; ++J) {
      int64_t Idx[2] = {I, J};
      int64_t Off = Inst.offset(0, Idx);
      EXPECT_GE(Off, 0);
      EXPECT_LT(Off, 144);
      EXPECT_TRUE(Seen.insert(Off).second) << "collision at " << I << ","
                                           << J;
    }
}

TEST(TiledLayout, TileInteriorIsContiguous) {
  BenchSpec Spec = makeMatMulTiled(4);
  ProgramInstance Inst(*Spec.Prog, {16});
  // Within one tile, row-major contiguity.
  int64_t A[2] = {5, 6}, B[2] = {5, 7}, C[2] = {6, 4};
  EXPECT_EQ(Inst.offset(0, B) - Inst.offset(0, A), 1);
  // Next tile row within the tile: stride = TileCols.
  int64_t D[2] = {5, 4};
  EXPECT_EQ(Inst.offset(0, C) - Inst.offset(0, D), 4);
}

TEST(TiledLayout, ShackledCodeStillExact) {
  BenchSpec Tiled = makeMatMulTiled(8);
  const Program &P = *Tiled.Prog;
  ShackleChain Chain = mmmShackleCxA(P, 8);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  // Compare against the plain-layout program numerically: same math, so
  // the logical results agree element-wise across layouts.
  BenchSpec Plain = makeMatMul();
  ProgramInstance TInst(P, {13}), PInst(*Plain.Prog, {13});
  // Fill logically identically.
  uint64_t X = 99;
  auto Next = [&X]() {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  };
  for (unsigned Arr = 0; Arr < 3; ++Arr)
    for (int64_t I = 0; I < 13; ++I)
      for (int64_t J = 0; J < 13; ++J) {
        double V = static_cast<double>(Next() >> 11) * 0x1.0p-53;
        int64_t Idx[2] = {I, J};
        TInst.buffer(Arr)[TInst.offset(Arr, Idx)] = V;
        PInst.buffer(Arr)[PInst.offset(Arr, Idx)] = V;
      }
  runLoopNest(generateShackledCode(P, Chain), TInst);
  runLoopNest(generateOriginalCode(*Plain.Prog), PInst);
  for (int64_t I = 0; I < 13; ++I)
    for (int64_t J = 0; J < 13; ++J) {
      int64_t Idx[2] = {I, J};
      EXPECT_EQ(TInst.buffer(0)[TInst.offset(0, Idx)],
                PInst.buffer(0)[PInst.offset(0, Idx)])
          << I << "," << J;
    }
}

//===----------------------------------------------------------------------===//
// Triangular solves and reversal
//===----------------------------------------------------------------------===//

TEST(TriangularSolve, LowerForwardWalkLegalUpperNeedsReversal) {
  BenchSpec Lower = makeTriangularSolve(/*Lower=*/true);
  EXPECT_TRUE(
      checkLegality(*Lower.Prog, triSolveShackle(*Lower.Prog, 4, false))
          .Legal);

  BenchSpec Upper = makeTriangularSolve(/*Lower=*/false);
  // Top-to-bottom block walk: illegal (the paper's back-solve example)...
  EXPECT_FALSE(
      checkLegality(*Upper.Prog, triSolveShackle(*Upper.Prog, 4, false))
          .Legal);
  // ...bottom-to-top: legal ("similar to loop reversal").
  EXPECT_TRUE(
      checkLegality(*Upper.Prog, triSolveShackle(*Upper.Prog, 4, true))
          .Legal);
}

class TriSolveEquivalence : public ::testing::TestWithParam<int64_t> {};

TEST_P(TriSolveEquivalence, ReversedUpperSolveMatchesOriginal) {
  int64_t N = GetParam();
  BenchSpec Spec = makeTriangularSolve(/*Lower=*/false);
  const Program &P = *Spec.Prog;
  ShackleChain Chain = triSolveShackle(P, 4, /*Reversed=*/true);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(77, 0.5, 1.5);
  // Boost the diagonal so divisions are well conditioned.
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Ref.buffer(1)[Ref.offset(1, Idx)] += 4.0;
  }
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    Test.buffer(A) = Ref.buffer(A);
  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, Chain), Test);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TriSolveEquivalence,
                         ::testing::Values<int64_t>(1, 3, 4, 5, 9, 17));

TEST(TriangularSolve, SolvesTheSystem) {
  // Forward solve really solves L y = b: check L y == b_original.
  BenchSpec Spec = makeTriangularSolve(/*Lower=*/true);
  const Program &P = *Spec.Prog;
  int64_t N = 12;
  ProgramInstance Inst(P, {N});
  Inst.fillRandom(5, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Inst.buffer(1)[Inst.offset(1, Idx)] += 4.0;
  }
  std::vector<double> B0 = Inst.buffer(0);
  runLoopNest(generateOriginalCode(P), Inst);
  for (int64_t I = 0; I < N; ++I) {
    double Acc = 0;
    for (int64_t J = 0; J <= I; ++J) {
      int64_t Idx[2] = {I, J};
      Acc += Inst.buffer(1)[Inst.offset(1, Idx)] * Inst.buffer(0)[J];
    }
    EXPECT_NEAR(Acc, B0[I], 1e-10);
  }
}

} // namespace
