//===- parallel_test.cpp - Parallel block-execution runtime -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Tests for the parallel subsystem: the Chase-Lev deque, the work-stealing
// DAG scheduler, the block dependence graph, the block partition pass, and
// the end-to-end ParallelPlan determinism guarantee (parallel results are
// bitwise-identical to serial shackled execution, for any thread count).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "parallel/BlockDepGraph.h"
#include "parallel/BlockPartition.h"
#include "parallel/ChaseLevDeque.h"
#include "parallel/ParallelExecutor.h"
#include "parallel/Scheduler.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

using namespace shackle;

namespace {

//===----------------------------------------------------------------------===//
// ChaseLevDeque
//===----------------------------------------------------------------------===//

TEST(ChaseLevDeque, OwnerLifoThiefFifo) {
  ChaseLevDeque<int> D(4);
  for (int I = 0; I < 10; ++I)
    D.push(I);
  int V = -1;
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 9); // Owner pops the most recent push.
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 0); // Thieves take the oldest.
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 1);
  for (int I = 0; I < 7; ++I)
    ASSERT_TRUE(D.pop(V));
  EXPECT_FALSE(D.pop(V));
  EXPECT_FALSE(D.steal(V));
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> D(2);
  const int N = 1000;
  for (int I = 0; I < N; ++I)
    D.push(I);
  std::vector<bool> Seen(N, false);
  int V = -1;
  int Count = 0;
  while (D.pop(V)) {
    ASSERT_FALSE(Seen[V]);
    Seen[V] = true;
    ++Count;
  }
  EXPECT_EQ(Count, N);
}

TEST(ChaseLevDeque, ConcurrentStealersGetEveryItemOnce) {
  // One owner pushes and pops; several thieves steal. Every pushed item
  // must be taken exactly once across all parties.
  const int NumItems = 20000;
  const int NumThieves = 3;
  ChaseLevDeque<int> D(8);
  std::atomic<bool> Stop{false};
  std::vector<std::atomic<uint8_t>> Taken(NumItems);
  for (auto &T : Taken)
    T.store(0);

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&]() {
      int V = -1;
      while (!Stop.load(std::memory_order_acquire))
        if (D.steal(V))
          Taken[V].fetch_add(1);
    });

  for (int I = 0; I < NumItems; ++I) {
    D.push(I);
    if (I % 3 == 0) {
      int V = -1;
      if (D.pop(V))
        Taken[V].fetch_add(1);
    }
  }
  int V = -1;
  while (D.pop(V))
    Taken[V].fetch_add(1);
  // Let thieves drain what is left (pop can lose the final-element race).
  for (int Spin = 0; Spin < 1000000 && D.sizeEstimate() > 0; ++Spin)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 0; I < NumItems; ++I)
    EXPECT_EQ(Taken[I].load(), 1) << "item " << I;
}

TEST(ChaseLevDeque, GrowthMidStealKeepsEveryItemExactlyOnce) {
  // TSan stress: a capacity-2 deque grows many times while thieves race the
  // owner, so steals repeatedly read ring pointers that growth is retiring.
  const int NumItems = 20000;
  const int NumThieves = 3;
  ChaseLevDeque<int> D(2);
  std::atomic<bool> Stop{false};
  std::vector<std::atomic<uint8_t>> Taken(NumItems);
  for (auto &T : Taken)
    T.store(0);

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&]() {
      int V = -1;
      while (!Stop.load(std::memory_order_acquire))
        if (D.steal(V))
          Taken[V].fetch_add(1);
    });

  for (int I = 0; I < NumItems; ++I)
    ASSERT_TRUE(D.push(I));
  int V = -1;
  while (D.pop(V))
    Taken[V].fetch_add(1);
  for (int Spin = 0; Spin < 1000000 && D.sizeEstimate() > 0; ++Spin)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 0; I < NumItems; ++I)
    EXPECT_EQ(Taken[I].load(), 1) << "item " << I;
}

//===----------------------------------------------------------------------===//
// runTaskDag
//===----------------------------------------------------------------------===//

/// Records a global completion order and verifies every edge afterwards.
struct OrderRecorder {
  std::mutex M;
  std::vector<uint32_t> Order;
  void record(uint32_t T) {
    std::lock_guard<std::mutex> L(M);
    Order.push_back(T);
  }
  bool respects(const std::vector<std::vector<uint32_t>> &Succs) const {
    std::vector<std::size_t> Pos(Order.size());
    for (std::size_t I = 0; I < Order.size(); ++I)
      Pos[Order[I]] = I;
    for (uint32_t U = 0; U < Succs.size(); ++U)
      for (uint32_t V : Succs[U])
        if (Pos[U] >= Pos[V])
          return false;
    return true;
  }
};

std::vector<uint32_t> inDegreesOf(std::size_t N,
                                  const std::vector<std::vector<uint32_t>> &S) {
  std::vector<uint32_t> D(N, 0);
  for (const auto &Out : S)
    for (uint32_t V : Out)
      ++D[V];
  return D;
}

TEST(Scheduler, RunsChainInOrderEveryThreadCount) {
  const std::size_t N = 64;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t I = 0; I + 1 < N; ++I)
    Succs[I].push_back(I + 1);
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    OrderRecorder R;
    DagRunStats Stats;
    ASSERT_TRUE(runTaskDag(
        N, Succs, inDegreesOf(N, Succs), Threads,
        [&](uint32_t T, unsigned) { R.record(T); }, &Stats));
    EXPECT_EQ(R.Order.size(), N);
    EXPECT_TRUE(R.respects(Succs));
    EXPECT_EQ(Stats.TasksRun, N);
  }
}

TEST(Scheduler, RunsDiamondAndWideFanOut) {
  // 0 -> {1..62} -> 63.
  const std::size_t N = 64;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t I = 1; I + 1 < N; ++I) {
    Succs[0].push_back(I);
    Succs[I].push_back(N - 1);
  }
  for (unsigned Threads : {1u, 3u, 8u}) {
    OrderRecorder R;
    ASSERT_TRUE(runTaskDag(N, Succs, inDegreesOf(N, Succs), Threads,
                           [&](uint32_t T, unsigned) { R.record(T); }));
    ASSERT_EQ(R.Order.size(), N);
    EXPECT_EQ(R.Order.front(), 0u);
    EXPECT_EQ(R.Order.back(), N - 1);
    EXPECT_TRUE(R.respects(Succs));
  }
}

TEST(Scheduler, RunsLayeredRandomishDag) {
  // Deterministic pseudo-random layered DAG: 8 layers of 16, each node
  // depends on a few nodes of the previous layer.
  const unsigned Layers = 8, Width = 16;
  const std::size_t N = Layers * Width;
  std::vector<std::vector<uint32_t>> Succs(N);
  uint64_t State = 12345;
  auto Next = [&State]() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(State >> 33);
  };
  for (unsigned L = 1; L < Layers; ++L)
    for (unsigned W = 0; W < Width; ++W) {
      uint32_t V = L * Width + W;
      unsigned Preds = 1 + Next() % 3;
      for (unsigned K = 0; K < Preds; ++K) {
        uint32_t U = (L - 1) * Width + Next() % Width;
        if (std::find(Succs[U].begin(), Succs[U].end(), V) == Succs[U].end())
          Succs[U].push_back(V);
      }
    }
  for (unsigned Threads : {1u, 4u, 8u}) {
    OrderRecorder R;
    ASSERT_TRUE(runTaskDag(N, Succs, inDegreesOf(N, Succs), Threads,
                           [&](uint32_t T, unsigned) { R.record(T); }));
    EXPECT_EQ(R.Order.size(), N);
    EXPECT_TRUE(R.respects(Succs));
  }
}

TEST(Scheduler, RefusesCyclesWithoutRunningAnything) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {2}, {0}};
  std::atomic<int> Ran{0};
  EXPECT_FALSE(runTaskDag(3, Succs, inDegreesOf(3, Succs), 4,
                          [&](uint32_t, unsigned) { Ran.fetch_add(1); }));
  EXPECT_EQ(Ran.load(), 0);
}

TEST(Scheduler, RefusesInconsistentInDegrees) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {}};
  std::vector<uint32_t> Wrong = {0, 0}; // Node 1 really has in-degree 1.
  std::atomic<int> Ran{0};
  EXPECT_FALSE(runTaskDag(2, Succs, Wrong, 2,
                          [&](uint32_t, unsigned) { Ran.fetch_add(1); }));
  EXPECT_EQ(Ran.load(), 0);
}

TEST(Scheduler, WideFanOutForcesDequeGrowthUnderContention) {
  // TSan stress: one root releases 4096 successors in a single completion,
  // overflowing the finishing worker's deque capacity (N/workers + 64) and
  // forcing growth while seven other workers steal from it.
  const std::size_t N = 4097;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t V = 1; V < N; ++V)
    Succs[0].push_back(V);
  std::vector<std::atomic<uint32_t>> Ran(N);
  for (auto &R : Ran)
    R.store(0);
  DagRunStats Stats;
  ASSERT_TRUE(runTaskDag(
      N, Succs, inDegreesOf(N, Succs), 8,
      [&](uint32_t T, unsigned) { Ran[T].fetch_add(1); }, &Stats));
  EXPECT_EQ(Stats.TasksRun, N);
  for (std::size_t T = 0; T < N; ++T)
    ASSERT_EQ(Ran[T].load(), 1u) << "task " << T;
}

TEST(Scheduler, WavefrontNarrowWideAlternationParksAndWakesCleanly) {
  // TSan stress: layers alternate between 1 task (every other worker must
  // park) and 8 tasks (one per worker), hammering the park/wake protocol.
  const unsigned Layers = 40;
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<uint32_t> LayerStart;
  uint32_t Next = 0;
  for (unsigned L = 0; L < Layers; ++L) {
    LayerStart.push_back(Next);
    Next += (L % 2 == 0) ? 1 : 8;
  }
  const std::size_t N = Next;
  Succs.resize(N);
  for (unsigned L = 0; L + 1 < Layers; ++L) {
    uint32_t W = (L % 2 == 0) ? 1 : 8;
    uint32_t WN = ((L + 1) % 2 == 0) ? 1 : 8;
    for (uint32_t A = 0; A < W; ++A)
      for (uint32_t B = 0; B < WN; ++B)
        Succs[LayerStart[L] + A].push_back(LayerStart[L + 1] + B);
  }
  OrderRecorder R;
  DagRunStats Stats;
  ASSERT_TRUE(runTaskDag(
      N, Succs, inDegreesOf(N, Succs), 8,
      [&](uint32_t T, unsigned) { R.record(T); }, &Stats));
  EXPECT_EQ(R.Order.size(), N);
  EXPECT_TRUE(R.respects(Succs));
}

TEST(Scheduler, PartialRunReportsExactlyTheUnfinishedSuffix) {
  // Chain 0->1->2->3->4; task 2 fails. Tasks 0 and 1 complete, 2 fails,
  // 3 and 4 are never released — the completion map says exactly that.
  const std::size_t N = 5;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t I = 0; I + 1 < N; ++I)
    Succs[I].push_back(I + 1);
  std::atomic<uint32_t> Ran{0};
  DagRunOptions Opts;
  Opts.NumThreads = 4;
  DagRunResult Result = runTaskDagPartial(
      N, Succs, inDegreesOf(N, Succs), Opts, [&](uint32_t T, unsigned) {
        Ran.fetch_add(1);
        return T != 2;
      });
  ASSERT_FALSE(Result.Refused);
  EXPECT_FALSE(Result.Completed);
  EXPECT_EQ(Result.Stats.Abort, DagAbort::TaskFailed);
  EXPECT_EQ(Result.Stats.TaskFailures, 1u);
  ASSERT_EQ(Result.TaskDone.size(), N);
  EXPECT_TRUE(Result.TaskDone[0]);
  EXPECT_TRUE(Result.TaskDone[1]);
  EXPECT_FALSE(Result.TaskDone[2]);
  EXPECT_FALSE(Result.TaskDone[3]);
  EXPECT_FALSE(Result.TaskDone[4]);
  EXPECT_EQ(Ran.load(), 3u); // 0, 1, and the failing 2; never 3 or 4.
}

TEST(Scheduler, PartialRunThrownExceptionQuiescesLikeAFailure) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {}};
  DagRunOptions Opts;
  Opts.NumThreads = 2;
  DagRunResult Result = runTaskDagPartial(
      2, Succs, inDegreesOf(2, Succs), Opts,
      [&](uint32_t, unsigned) -> bool { throw std::runtime_error("boom"); });
  ASSERT_FALSE(Result.Refused);
  EXPECT_FALSE(Result.Completed);
  EXPECT_EQ(Result.Stats.Abort, DagAbort::TaskFailed);
  EXPECT_FALSE(Result.TaskDone[0]);
  EXPECT_FALSE(Result.TaskDone[1]);
}

TEST(Scheduler, PartialRunRefusesCyclesLikeTheStrictWrapper) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {2}, {0}};
  DagRunOptions Opts;
  Opts.NumThreads = 2;
  std::atomic<int> Ran{0};
  DagRunResult Result =
      runTaskDagPartial(3, Succs, inDegreesOf(3, Succs), Opts,
                        [&](uint32_t, unsigned) {
                          Ran.fetch_add(1);
                          return true;
                        });
  EXPECT_TRUE(Result.Refused);
  EXPECT_FALSE(Result.Completed);
  EXPECT_EQ(Ran.load(), 0);
}

TEST(Scheduler, DeadlineAbortsARunThatCannotFinishInTime) {
  // A chain of tasks that each sleep: the deadline fires mid-run and the
  // completion map records a strict prefix.
  const std::size_t N = 64;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t I = 0; I + 1 < N; ++I)
    Succs[I].push_back(I + 1);
  DagRunOptions Opts;
  Opts.NumThreads = 2;
  Opts.DeadlineMs = 40;
  DagRunResult Result = runTaskDagPartial(
      N, Succs, inDegreesOf(N, Succs), Opts, [&](uint32_t, unsigned) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return true;
      });
  ASSERT_FALSE(Result.Refused);
  EXPECT_FALSE(Result.Completed);
  EXPECT_EQ(Result.Stats.Abort, DagAbort::Deadline);
  uint64_t Done = 0;
  for (uint8_t D : Result.TaskDone)
    Done += D;
  EXPECT_GT(Done, 0u);
  EXPECT_LT(Done, N);
  // Chain: completion must be a prefix (failed tasks release no successors).
  for (std::size_t T = 1; T < N; ++T)
    if (Result.TaskDone[T])
      EXPECT_TRUE(Result.TaskDone[T - 1]) << "task " << T;
}

TEST(Scheduler, HandlesEmptyAndSingletonDags) {
  EXPECT_TRUE(runTaskDag(0, {}, {}, 4, [](uint32_t, unsigned) {}));
  std::atomic<int> Ran{0};
  EXPECT_TRUE(runTaskDag(1, {{}}, {0}, 8,
                         [&](uint32_t, unsigned) { Ran.fetch_add(1); }));
  EXPECT_EQ(Ran.load(), 1);
}

//===----------------------------------------------------------------------===//
// BlockDepGraph
//===----------------------------------------------------------------------===//

TEST(BlockDepGraph, MatMulOnCBlocksAreIndependent) {
  // Every dependence of C += A*B is a reduction on one C element; shackled
  // on C, both endpoints land in the same block, so no cross-block sign
  // pattern is feasible and the DAG has no edges at all.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleC(P, 8);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  bool SawUnknown = false;
  std::vector<std::vector<int>> Patterns =
      blockDependenceSigns(P, Chain, {32}, SolverBudget(), &SawUnknown);
  EXPECT_FALSE(SawUnknown);
  EXPECT_TRUE(Patterns.empty());

  LoopNest Nest = generateShackledCode(P, Chain);
  BlockPartition Part = partitionLoopNestByBlocks(Nest, 2, {32});
  ASSERT_TRUE(Part.OK);
  EXPECT_EQ(Part.Tasks.size(), 16u); // (32/8)^2 blocks of C.

  BlockDepGraph G = buildBlockDepGraph(P, Chain, {32}, Part.coords());
  EXPECT_EQ(G.numBlocks(), 16u);
  EXPECT_EQ(G.NumEdges, 0u);
  EXPECT_TRUE(G.acyclic());
  EXPECT_EQ(G.criticalPathLength(), 1u);
  EXPECT_FALSE(G.Conservative);
}

TEST(BlockDepGraph, CholeskyHasForwardEdgesAndIsAcyclic) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 4);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  LoopNest Nest = generateShackledCode(P, Chain);
  BlockPartition Part = partitionLoopNestByBlocks(Nest, 2, {16});
  ASSERT_TRUE(Part.OK);

  BlockDepGraph G = buildBlockDepGraph(P, Chain, {16}, Part.coords());
  EXPECT_GT(G.NumEdges, 0u); // The factorization really orders its blocks.
  EXPECT_TRUE(G.acyclic());
  // Legal shackle => every feasible pattern is lexicographically positive
  // (Theorem 1 excludes backward patterns, and the all-zero pattern is
  // excluded by construction).
  for (const std::vector<int> &Pat : G.SignPatterns) {
    auto NZ = std::find_if(Pat.begin(), Pat.end(), [](int S) { return S != 0; });
    ASSERT_NE(NZ, Pat.end());
    EXPECT_GT(*NZ, 0);
  }
  // Every edge goes forward in traversal order (Coords are sorted lex).
  for (uint32_t U = 0; U < G.Succs.size(); ++U)
    for (uint32_t V : G.Succs[U])
      EXPECT_LT(G.Coords[U], G.Coords[V]);
  // The diagonal chain forces a critical path several blocks long.
  EXPECT_GT(G.criticalPathLength(), 1u);
  EXPECT_LE(G.criticalPathLength(), G.numBlocks());
}

TEST(BlockDepGraph, EdgeCapDegradesGracefully) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 4);
  LoopNest Nest = generateShackledCode(P, Chain);
  BlockPartition Part = partitionLoopNestByBlocks(Nest, 2, {16});
  ASSERT_TRUE(Part.OK);
  BlockDepGraphOptions Opts;
  Opts.MaxEdges = 1;
  BlockDepGraph G = buildBlockDepGraph(P, Chain, {16}, Part.coords(), Opts);
  EXPECT_TRUE(G.EdgeCapHit);
  EXPECT_FALSE(G.acyclic()); // Unusable graphs must not schedule.
}

//===----------------------------------------------------------------------===//
// BlockPartition
//===----------------------------------------------------------------------===//

TEST(BlockPartition, CoordsMatchTraversalOrderAndCoverEveryBlock) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 4);
  LoopNest Nest = generateShackledCode(P, Chain);
  BlockPartition Part = partitionLoopNestByBlocks(Nest, 2, {16});
  ASSERT_TRUE(Part.OK);
  EXPECT_EQ(Part.NumBlockDims, 2u);
  ASSERT_FALSE(Part.Tasks.empty());
  // Traversal order is lexicographic in block coordinates, no duplicates.
  for (std::size_t I = 0; I + 1 < Part.Tasks.size(); ++I)
    EXPECT_LT(Part.Tasks[I].Coords, Part.Tasks[I + 1].Coords);
  // Lower-triangular 16x16 matrix in 4x4 blocks: 4+3+2+1 touched blocks.
  EXPECT_EQ(Part.Tasks.size(), 10u);
  for (const BlockTask &T : Part.Tasks) {
    EXPECT_EQ(T.Coords.size(), 2u);
    EXPECT_FALSE(T.Segments.empty());
    for (const BlockTask::Segment &Seg : T.Segments) {
      ASSERT_NE(Seg.Node, nullptr);
      ASSERT_EQ(Seg.DimValues.size(), Nest.NumDims);
      EXPECT_EQ(Seg.DimValues[0], 16); // Parameter N.
      EXPECT_EQ(Seg.DimValues[1], T.Coords[0]);
      EXPECT_EQ(Seg.DimValues[2], T.Coords[1]);
    }
  }
}

TEST(BlockPartition, SerialSegmentReplayMatchesFullNest) {
  // Running every task's segments in traversal order through
  // runLoopNestSubtree must reproduce plain runLoopNest exactly.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleC(P, 8);
  LoopNest Nest = generateShackledCode(P, Chain);
  int64_t N = 24;
  BlockPartition Part = partitionLoopNestByBlocks(Nest, 2, {N});
  ASSERT_TRUE(Part.OK);

  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(11, -1.0, 1.0);
  for (unsigned A = 0; A < 3; ++A)
    Test.buffer(A) = Ref.buffer(A);
  runLoopNest(Nest, Ref);
  for (const BlockTask &T : Part.Tasks)
    for (const BlockTask::Segment &Seg : T.Segments)
      runLoopNestSubtree(Nest, *Seg.Node, Seg.DimValues, Test);
  EXPECT_TRUE(Ref.bitwiseEqual(Test));
}

//===----------------------------------------------------------------------===//
// ParallelPlan: end-to-end determinism
//===----------------------------------------------------------------------===//

bool hasParallelFallbackDiag(const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags)
    if (D.Code == DiagCode::ParallelFallback)
      return true;
  return false;
}

/// Runs Spec's Chain in parallel with every thread count and checks the
/// result is bitwise-identical to the serial shackled execution.
void expectDeterministic(const BenchSpec &Spec, const ShackleChain &Chain,
                         std::vector<int64_t> Params, bool ExpectReady,
                         unsigned Repeats = 2) {
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, Chain, Params);
  EXPECT_EQ(Plan.parallelReady(), ExpectReady) << Plan.summary();

  ProgramInstance Ref(P, Params);
  Ref.fillRandom(77, 0.5, 1.5);
  // Diagonal boost keeps Cholesky-style factorizations well conditioned.
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    for (double &V : Ref.buffer(A))
      V += 1.0;
  ProgramInstance Init = Ref;
  Plan.runSerial(Ref);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
      ProgramInstance Par = Init;
      ParallelRunStats Stats = Plan.run(Par, Threads);
      EXPECT_TRUE(Ref.bitwiseEqual(Par))
          << Spec.Name << " threads=" << Threads << " rep=" << Rep
          << " mode=" << parallelModeName(Stats.Mode);
      if (ExpectReady) {
        EXPECT_EQ(Stats.Mode, ParallelMode::Parallel);
        EXPECT_EQ(Stats.BlocksRun, Plan.partition().Tasks.size());
      } else {
        EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
      }
    }
  }
}

TEST(ParallelPlan, MatMulDeterministicAcrossThreadCounts) {
  BenchSpec Spec = makeMatMul();
  expectDeterministic(Spec, mmmShackleC(*Spec.Prog, 8), {32}, true);
}

TEST(ParallelPlan, MatMulFullyBlockedDeterministic) {
  BenchSpec Spec = makeMatMul();
  expectDeterministic(Spec, mmmShackleCxA(*Spec.Prog, 8), {24}, true);
}

TEST(ParallelPlan, CholeskyDeterministicAcrossThreadCounts) {
  BenchSpec Spec = makeCholeskyRight();
  expectDeterministic(Spec, choleskyShackleStores(*Spec.Prog, 4), {20}, true);
}

TEST(ParallelPlan, AdiDeterministicAcrossThreadCounts) {
  BenchSpec Spec = makeADI();
  expectDeterministic(Spec, adiShackle(*Spec.Prog), {12}, true);
}

TEST(ParallelPlan, MatMulParallelSpeedupInstrumentation) {
  // Not a timing test (CI machines vary); asserts the parallel run really
  // distributes work: with independent blocks and several workers, worker 0
  // must not execute everything when other workers steal.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmShackleC(P, 8), {32});
  ASSERT_TRUE(Plan.parallelReady());
  EXPECT_EQ(Plan.graph().NumEdges, 0u);
  ProgramInstance Inst(P, {32});
  Inst.fillRandom(3, 0.0, 1.0);
  ParallelRunStats Stats = Plan.run(Inst, 4);
  EXPECT_EQ(Stats.Mode, ParallelMode::Parallel);
  EXPECT_EQ(Stats.BlocksRun, 16u);
  EXPECT_LE(Stats.ThreadsUsed, 4u);
}

TEST(ParallelPlan, IllegalShackleFallsBackToSerialAndStaysCorrect) {
  // Seidel's single-sweep shackle is illegal; the plan must degrade to the
  // original-order serial tier, emit a ParallelFallback diagnostic, and
  // still compute the right answer.
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, seidelShackle(P, 8), {24, 3});
  EXPECT_FALSE(Plan.parallelReady());
  EXPECT_EQ(Plan.tier(), CodegenTier::Original);
  bool SawFallbackDiag = false;
  for (const Diagnostic &D : Plan.diags())
    if (D.Code == DiagCode::ParallelFallback)
      SawFallbackDiag = true;
  EXPECT_TRUE(SawFallbackDiag);

  ProgramInstance Ref(P, {24, 3}), Par(P, {24, 3});
  Ref.fillRandom(5, 0.0, 1.0);
  Par.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);
  ParallelRunStats Stats = Plan.run(Par, 8);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_TRUE(Ref.bitwiseEqual(Par));
}

TEST(ParallelPlan, TinySolverBudgetFallsBackAcrossTheTierBoundary) {
  // With a starved solver the legality check cannot prove the shackle, so
  // the plan crosses the tier boundary down to Original code, diagnoses
  // the fallback, and still computes the right answer serially.
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions Opts;
  Opts.Budget.MaxWorkUnits = 5;
  ParallelPlan Plan =
      ParallelPlan::build(P, choleskyShackleStores(P, 4), {16}, Opts);
  EXPECT_FALSE(Plan.parallelReady());
  EXPECT_TRUE(hasParallelFallbackDiag(Plan.diags())) << Plan.summary();

  ProgramInstance Ref(P, {16}), Par(P, {16});
  Ref.fillRandom(5, 0.5, 1.5);
  for (double &V : Ref.buffer(0))
    V += 1.0;
  Par.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);
  ParallelRunStats Stats = Plan.run(Par, 4);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_TRUE(Ref.bitwiseEqual(Par));
}

TEST(ParallelPlan, EdgeCapHitKeepsTheProvenTierButRunsSerially) {
  // MaxEdges=1 makes the DAG unusable (EdgeCapHit -> not acyclic), but the
  // shackle itself is proven legal: the plan keeps the shackled nest and
  // runs it serially in traversal order, bitwise-equal to runSerial.
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions Opts;
  Opts.MaxEdges = 1;
  ParallelPlan Plan =
      ParallelPlan::build(P, choleskyShackleStores(P, 4), {16}, Opts);
  EXPECT_FALSE(Plan.parallelReady());
  EXPECT_EQ(Plan.tier(), CodegenTier::Shackled);
  EXPECT_TRUE(hasParallelFallbackDiag(Plan.diags())) << Plan.summary();

  ProgramInstance Ref(P, {16}), Par(P, {16});
  Ref.fillRandom(5, 0.5, 1.5);
  for (double &V : Ref.buffer(0))
    V += 1.0;
  Par.buffer(0) = Ref.buffer(0);
  Plan.runSerial(Ref);
  ParallelRunStats Stats = Plan.run(Par, 4);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_TRUE(Ref.bitwiseEqual(Par));
}

TEST(ParallelPlan, ZeroThreadsMeansOne) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmShackleC(P, 8), {16});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance A(P, {16}), B(P, {16});
  A.fillRandom(9, 0.0, 1.0);
  for (unsigned Arr = 0; Arr < 3; ++Arr)
    B.buffer(Arr) = A.buffer(Arr);
  ParallelRunStats SA = Plan.run(A, 0);
  Plan.runSerial(B);
  EXPECT_EQ(SA.ThreadsUsed, 1u);
  EXPECT_TRUE(A.bitwiseEqual(B));
}

} // namespace
