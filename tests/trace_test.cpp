//===- trace_test.cpp - Access-pattern claims -----------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Paper Section 4.2: "the pattern of array accesses made by the code of
// Figure 5, which is obtained directly from the specification of the data
// shackle without any use of polyhedral algebra tools, is identical to the
// pattern of array accesses made by the simplified code of Figure 6. The
// role of polyhedral algebra tools in our approach is merely to simplify
// programs." We check the strongest form: the full interpreter-level
// address trace of the naive and the simplified code is identical, element
// by element, for every benchmark — and likewise validates the direction
// vectors against enumeration.
//
//===----------------------------------------------------------------------===//

#include "core/Dependence.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

using namespace shackle;

namespace {

struct Access {
  unsigned Array;
  int64_t Off;
  bool Write;
  bool operator==(const Access &O) const {
    return Array == O.Array && Off == O.Off && Write == O.Write;
  }
};

std::vector<Access> traceOf(const Program &P, const LoopNest &Nest,
                            std::vector<int64_t> Params) {
  ProgramInstance Inst(P, std::move(Params));
  Inst.fillRandom(1, 0.5, 1.5);
  std::vector<Access> Out;
  TraceFn Trace = [&](unsigned A, int64_t O, bool W) {
    Out.push_back({A, O, W});
  };
  runLoopNest(Nest, Inst, &Trace);
  return Out;
}

class NaiveVsSimplifiedTrace : public ::testing::TestWithParam<int> {};

TEST_P(NaiveVsSimplifiedTrace, AddressTracesAreIdentical) {
  int Which = GetParam();
  BenchSpec Spec = Which == 0   ? makeMatMul()
                   : Which == 1 ? makeCholeskyRight()
                   : Which == 2 ? makeGmtry()
                                : makeADI();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = Which == 0   ? mmmShackleC(P, 4)
                       : Which == 1 ? choleskyShackleStores(P, 4)
                       : Which == 2 ? gmtryShackleStores(P, 4)
                                    : adiShackle(P);
  LoopNest Naive = generateNaiveShackledCode(P, Chain);
  LoopNest Simplified = generateShackledCode(P, Chain);
  std::vector<Access> TN = traceOf(P, Naive, {11});
  std::vector<Access> TS = traceOf(P, Simplified, {11});
  ASSERT_EQ(TN.size(), TS.size());
  for (size_t I = 0; I < TN.size(); ++I)
    ASSERT_TRUE(TN[I] == TS[I]) << "diverges at access " << I;
}

INSTANTIATE_TEST_SUITE_P(Kernels, NaiveVsSimplifiedTrace,
                         ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// Direction vectors vs enumeration
//===----------------------------------------------------------------------===//

class DirectionOracle : public ::testing::TestWithParam<int> {};

TEST_P(DirectionOracle, MarginalSignsMatchEnumeration) {
  int Which = GetParam();
  BenchSpec Spec = Which == 0   ? makeMatMul()
                   : Which == 1 ? makeCholeskyRight()
                   : Which == 2 ? makeCholeskyLeft()
                                : makeADI();
  const Program &P = *Spec.Prog;
  int64_t N = 7;

  // Enumerate instances in program order with their accesses.
  struct Inst {
    unsigned StmtId;
    std::vector<int64_t> Iter;
  };
  std::vector<Inst> Insts;
  {
    std::vector<int64_t> VarValues(P.getNumVars(), 0);
    VarValues[0] = N;
    std::function<void(const std::vector<Node> &)> Walk =
        [&](const std::vector<Node> &Body) {
          for (const Node &Nd : Body) {
            if (Nd.isLoop()) {
              const Loop &L = *Nd.L;
              int64_t Lo = L.LowerBounds[0].evaluate(VarValues);
              for (unsigned I = 1; I < L.LowerBounds.size(); ++I)
                Lo = std::max(Lo, L.LowerBounds[I].evaluate(VarValues));
              int64_t Hi = L.UpperBounds[0].evaluate(VarValues);
              for (unsigned I = 1; I < L.UpperBounds.size(); ++I)
                Hi = std::min(Hi, L.UpperBounds[I].evaluate(VarValues));
              for (int64_t V = Lo; V <= Hi; ++V) {
                VarValues[L.Var] = V;
                Walk(L.Body);
              }
            } else {
              Inst R;
              R.StmtId = Nd.S->Id;
              for (unsigned Var : Nd.S->LoopVars)
                R.Iter.push_back(VarValues[Var]);
              Insts.push_back(std::move(R));
            }
          }
        };
    Walk(P.topLevel());
  }

  auto EvalRef = [&](const ArrayRef &R, const Inst &I) {
    const Stmt &S = P.getStmt(I.StmtId);
    std::vector<int64_t> VarValues(P.getNumVars(), 0);
    VarValues[0] = N;
    for (unsigned K = 0; K < S.LoopVars.size(); ++K)
      VarValues[S.LoopVars[K]] = I.Iter[K];
    std::vector<int64_t> Out = {static_cast<int64_t>(R.ArrayId)};
    for (const AffineExpr &E : R.Indices)
      Out.push_back(E.evaluate(VarValues));
    return Out;
  };

  // Observed marginal signs per (src stmt, dst stmt, level).
  std::map<std::tuple<unsigned, unsigned, unsigned, int>, bool> Observed;
  for (size_t A = 0; A < Insts.size(); ++A) {
    for (size_t B = A + 1; B < Insts.size(); ++B) {
      const Stmt &SA = P.getStmt(Insts[A].StmtId);
      const Stmt &SB = P.getStmt(Insts[B].StmtId);
      auto RefsA = SA.refs();
      auto RefsB = SB.refs();
      bool Dep = false;
      for (const auto &[RA, WA] : RefsA)
        for (const auto &[RB, WB] : RefsB)
          if ((WA || WB) &&
              EvalRef(*RA, Insts[A]) == EvalRef(*RB, Insts[B]))
            Dep = true;
      if (!Dep)
        continue;
      unsigned CP = 0;
      while (CP < SA.LoopVars.size() && CP < SB.LoopVars.size() &&
             SA.LoopVars[CP] == SB.LoopVars[CP])
        ++CP;
      for (unsigned L = 0; L < CP; ++L) {
        int64_t D = Insts[B].Iter[L] - Insts[A].Iter[L];
        int Sign = D > 0 ? 1 : D < 0 ? -1 : 0;
        Observed[{SA.Id, SB.Id, L, Sign}] = true;
      }
    }
  }

  // The exact summaries must cover every observed sign (the converse need
  // not hold at one fixed N).
  std::map<std::tuple<unsigned, unsigned, unsigned, int>, bool> Summarized;
  for (const DependenceSummary &S : summarizeDependences(P))
    for (unsigned L = 0; L < S.Directions.size(); ++L) {
      if (S.Directions[L].Lt)
        Summarized[{S.SrcStmt, S.DstStmt, L, 1}] = true;
      if (S.Directions[L].Eq)
        Summarized[{S.SrcStmt, S.DstStmt, L, 0}] = true;
      if (S.Directions[L].Gt)
        Summarized[{S.SrcStmt, S.DstStmt, L, -1}] = true;
    }
  for (const auto &[K, V] : Observed) {
    (void)V;
    EXPECT_TRUE(Summarized.count(K))
        << "observed sign not summarized: S" << std::get<0>(K) << "->S"
        << std::get<1>(K) << " level " << std::get<2>(K) << " sign "
        << std::get<3>(K);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DirectionOracle, ::testing::Range(0, 4));

} // namespace
