//===- kernels_test.cpp - Micro BLAS and baseline algorithms ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "kernels/Baselines.h"
#include "kernels/MicroBlas.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

using namespace shackle;

namespace {

void fill(std::vector<double> &V, uint64_t Seed, double Lo = 0.5,
          double Hi = 1.5) {
  uint64_t X = Seed * 0x9e3779b97f4a7c15ULL + 1;
  for (double &E : V) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    E = Lo + (Hi - Lo) * (static_cast<double>(X >> 11) * 0x1.0p-53);
  }
}

/// Makes a random SPD matrix (row-major): diagonally dominant.
std::vector<double> spd(int64_t N, uint64_t Seed) {
  std::vector<double> A(N * N);
  fill(A, Seed);
  // Symmetrize and boost.
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < I; ++J)
      A[J * N + I] = A[I * N + J];
  for (int64_t I = 0; I < N; ++I)
    A[I * N + I] += 3.0 * static_cast<double>(N);
  return A;
}

//===----------------------------------------------------------------------===//
// Micro BLAS
//===----------------------------------------------------------------------===//

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmShapes, MatchesNaiveTripleLoop) {
  auto [M, N, K] = GetParam();
  std::vector<double> A(M * K), B(K * N), C(M * N), Ref;
  fill(A, 1);
  fill(B, 2);
  fill(C, 3);
  Ref = C;
  microGemm(C.data(), A.data(), B.data(), M, N, K, N, K, N);
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double Acc = Ref[I * N + J];
      for (int64_t P = 0; P < K; ++P)
        Acc += A[I * K + P] * B[P * N + J];
      EXPECT_NEAR(C[I * N + J], Acc, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(8, 8, 8), std::make_tuple(13, 1, 6),
                      std::make_tuple(1, 9, 4), std::make_tuple(16, 12, 20)));

TEST(MicroBlas, GemmSubIsGemmWithNegatedProduct) {
  const int64_t N = 9;
  std::vector<double> A(N * N), B(N * N), C1(N * N), C2(N * N);
  fill(A, 4);
  fill(B, 5);
  fill(C1, 6);
  C2 = C1;
  microGemmSub(C1.data(), A.data(), B.data(), N, N, N, N, N, N);
  std::vector<double> NegA(N * N);
  for (int64_t I = 0; I < N * N; ++I)
    NegA[I] = -A[I];
  microGemm(C2.data(), NegA.data(), B.data(), N, N, N, N, N, N);
  for (int64_t I = 0; I < N * N; ++I)
    EXPECT_NEAR(C1[I], C2[I], 1e-12);
}

TEST(MicroBlas, SyrkLowerMatchesGemmOnLowerTriangle) {
  const int64_t N = 10, K = 6;
  std::vector<double> A(N * K), C1(N * N), C2(N * N);
  fill(A, 7);
  fill(C1, 8);
  C2 = C1;
  microSyrkLower(C1.data(), A.data(), N, K, N, K);
  // Reference: C2 -= A * A^T, then compare lower triangles.
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J) {
      double Acc = 0;
      for (int64_t P = 0; P < K; ++P)
        Acc += A[I * K + P] * A[J * K + P];
      C2[I * N + J] -= Acc;
    }
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J)
      EXPECT_NEAR(C1[I * N + J], C2[I * N + J], 1e-12);
  // Strict upper triangle untouched.
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = I + 1; J < N; ++J)
      EXPECT_EQ(C1[I * N + J], C2[I * N + J]);
}

TEST(MicroBlas, TrsmSolvesXLTransposeEqualsB) {
  const int64_t M = 7, N = 5;
  std::vector<double> L(N * N, 0.0), B(M * N), X;
  fill(B, 9);
  // Well-conditioned lower triangular L.
  for (int64_t I = 0; I < N; ++I) {
    for (int64_t J = 0; J < I; ++J)
      L[I * N + J] = 0.25 / static_cast<double>(I + J + 1);
    L[I * N + I] = 2.0 + static_cast<double>(I);
  }
  X = B;
  microTrsmRightLowerT(X.data(), L.data(), M, N, N, N);
  // Check X * L^T == B.
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double Acc = 0;
      for (int64_t P = 0; P <= J; ++P)
        Acc += X[I * N + P] * L[J * N + P];
      EXPECT_NEAR(Acc, B[I * N + J], 1e-10);
    }
}

TEST(MicroBlas, CholeskyLowerReconstructs) {
  const int64_t N = 12;
  std::vector<double> A = spd(N, 10), L = A;
  microCholeskyLower(L.data(), N, N);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J) {
      double Acc = 0;
      for (int64_t P = 0; P <= std::min(I, J); ++P)
        Acc += L[I * N + P] * L[J * N + P];
      EXPECT_NEAR(Acc, A[I * N + J], 1e-9);
    }
}

//===----------------------------------------------------------------------===//
// Baselines
//===----------------------------------------------------------------------===//

class BlockedVariants : public ::testing::TestWithParam<int64_t> {};

TEST_P(BlockedVariants, BlockedMatMulMatchesNaive) {
  int64_t N = GetParam();
  std::vector<double> A(N * N), B(N * N), C1(N * N), C2(N * N);
  fill(A, 11);
  fill(B, 12);
  fill(C1, 13);
  C2 = C1;
  naiveMatMul(C1.data(), A.data(), B.data(), N);
  blockedMatMul(C2.data(), A.data(), B.data(), N, 5);
  for (int64_t I = 0; I < N * N; ++I)
    EXPECT_NEAR(C1[I], C2[I], 1e-10);
}

TEST_P(BlockedVariants, BlockedCholeskyMatchesNaive) {
  int64_t N = GetParam();
  std::vector<double> A1 = spd(N, 14), A2 = A1;
  naiveCholeskyRight(A1.data(), N);
  blockedCholeskyLAPACK(A2.data(), N, 5);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J)
      EXPECT_NEAR(A1[I * N + J], A2[I * N + J], 1e-9) << I << "," << J;
}

TEST_P(BlockedVariants, BlockedQRMatchesNaive) {
  int64_t N = GetParam();
  std::vector<double> A1(N * N), A2, R1(N), R2(N);
  fill(A1, 15);
  A2 = A1;
  naiveQRHouseholder(A1.data(), R1.data(), N);
  blockedQRWY(A2.data(), R2.data(), N, 5);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_NEAR(R1[I], R2[I], 1e-8) << "rdiag " << I;
  for (int64_t I = 0; I < N * N; ++I)
    EXPECT_NEAR(A1[I], A2[I], 1e-8) << "A " << I;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockedVariants,
                         ::testing::Values<int64_t>(1, 2, 4, 5, 9, 16, 23));

TEST(Baselines, QRReconstructsInput) {
  // Q^T A = R with our conventions: applying the stored reflectors to the
  // original columns must reproduce the triangle (spot-check via solve-free
  // identity: columns of the factored A above the diagonal are R's).
  const int64_t N = 10;
  std::vector<double> A(N * N), F, Rd(N);
  fill(A, 16);
  F = A;
  naiveQRHouseholder(F.data(), Rd.data(), N);
  // Re-apply the K reflectors to the original matrix; the result must match
  // the factored strict upper triangle and Rdiag.
  std::vector<double> W = A;
  for (int64_t K = 0; K < N; ++K) {
    // v lives in F[K..N-1, K]; beta = v'v / 2. A zero v (x was already
    // -alpha * e1, typical for the last 1x1 column) means H is the
    // identity.
    double VtV = 0;
    for (int64_t I = K; I < N; ++I)
      VtV += F[I * N + K] * F[I * N + K];
    if (VtV == 0.0)
      continue;
    double Beta = VtV / 2.0;
    for (int64_t J = K; J < N; ++J) {
      double S = 0;
      for (int64_t I = K; I < N; ++I)
        S += F[I * N + K] * W[I * N + J];
      double Scale = S / Beta;
      for (int64_t I = K; I < N; ++I)
        W[I * N + J] -= F[I * N + K] * Scale;
    }
  }
  for (int64_t K = 0; K < N; ++K) {
    EXPECT_NEAR(W[K * N + K], Rd[K], 1e-8);
    for (int64_t J = K + 1; J < N; ++J)
      EXPECT_NEAR(W[K * N + J], F[K * N + J], 1e-8);
    for (int64_t I = K + 1; I < N; ++I)
      EXPECT_NEAR(W[I * N + K], 0.0, 1e-8); // Annihilated below diagonal.
  }
}

TEST(Baselines, AdiFusedMatchesOriginal) {
  const int64_t N = 17;
  std::vector<double> B1(N * N), X1(N * N), A(N * N), B2, X2;
  fill(B1, 17, 1.0, 2.0);
  fill(X1, 18);
  fill(A, 19);
  B2 = B1;
  X2 = X1;
  adiOriginal(B1.data(), X1.data(), A.data(), N);
  adiFusedInterchanged(B2.data(), X2.data(), A.data(), N);
  for (int64_t I = 0; I < N * N; ++I) {
    EXPECT_EQ(B1[I], B2[I]);
    EXPECT_EQ(X1[I], X2[I]);
  }
}

class BandSizes
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(BandSizes, BandCholeskyMatchesDenseCholesky) {
  auto [N, BW] = GetParam();
  // Build a banded SPD matrix densely, factor it densely and in band
  // storage, and compare inside the band.
  std::vector<double> Dense(N * N, 0.0);
  std::vector<double> Band((BW + 1) * N);
  fill(Band, 20);
  for (int64_t J = 0; J < N; ++J)
    Band[J * (BW + 1)] += 3.0 * static_cast<double>(BW + 1);
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = J; I <= std::min(N - 1, J + BW); ++I) {
      Dense[I * N + J] = Band[(I - J) + J * (BW + 1)];
      Dense[J * N + I] = Dense[I * N + J];
    }
  std::vector<double> BandBlocked = Band;
  naiveCholeskyRight(Dense.data(), N);
  bandCholeskyNaive(Band.data(), N, BW);
  bandCholeskyBlocked(BandBlocked.data(), N, BW, 4);
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = J; I <= std::min(N - 1, J + BW); ++I) {
      EXPECT_NEAR(Band[(I - J) + J * (BW + 1)], Dense[I * N + J], 1e-9);
      EXPECT_NEAR(BandBlocked[(I - J) + J * (BW + 1)], Dense[I * N + J],
                  1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandSizes,
    ::testing::Combine(::testing::Values<int64_t>(6, 13, 20),
                       ::testing::Values<int64_t>(1, 2, 5)));

} // namespace
