//===- errors_test.cpp - Misuse diagnostics -------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The library aborts loudly (fatalError) on API misuse instead of silently
// producing wrong code; death tests pin the diagnostics. Plus
// describeChain rendering.
//
//===----------------------------------------------------------------------===//

#include "core/DataShackle.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(ErrorsDeathTest, OnStoresRequiresStoresToTheBlockedArray) {
  // MMM's statement stores to C (array 0); blocking A (array 1) through
  // stores is a misuse.
  BenchSpec Spec = makeMatMul();
  EXPECT_DEATH(DataShackle::onStores(
                   *Spec.Prog, DataBlocking::rectangular(1, {8, 8})),
               "does not store to the blocked array");
}

TEST(ErrorsDeathTest, OnRefsRejectsWrongArray) {
  BenchSpec Spec = makeMatMul();
  // Reference 2 of S1 is A[I,K]; pairing it with a blocking of B is wrong.
  EXPECT_DEATH(DataShackle::onRefs(*Spec.Prog,
                                   DataBlocking::rectangular(2, {8, 8}),
                                   {2}),
               "does not target the blocked array");
}

//===----------------------------------------------------------------------===//
// The recoverable counterparts: tryOnStores/tryOnRefs return a diagnostic
// instead of dying, so the CLI (and any embedder) can report and continue.
//===----------------------------------------------------------------------===//

TEST(RecoverableErrors, TryOnStoresReportsMismatchDiagnostic) {
  BenchSpec Spec = makeMatMul();
  Expected<DataShackle> S = DataShackle::tryOnStores(
      *Spec.Prog, DataBlocking::rectangular(1, {8, 8}));
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Code, DiagCode::ShackleMismatch);
  EXPECT_NE(S.diagnostic().Message.find("does not store to the blocked array"),
            std::string::npos)
      << S.diagnostic().Message;
}

TEST(RecoverableErrors, TryOnStoresSucceedsOnTheStoredArray) {
  BenchSpec Spec = makeMatMul();
  Expected<DataShackle> S = DataShackle::tryOnStores(
      *Spec.Prog, DataBlocking::rectangular(0, {8, 8}));
  ASSERT_TRUE(S.ok()) << S.diagnostic().Message;
  EXPECT_EQ(S->ShackledRefs.size(), Spec.Prog->getNumStmts());
}

TEST(RecoverableErrors, TryOnRefsValidatesIndexVectorAndArray) {
  BenchSpec Spec = makeMatMul();
  // Wrong array for the chosen reference.
  Expected<DataShackle> Wrong = DataShackle::tryOnRefs(
      *Spec.Prog, DataBlocking::rectangular(2, {8, 8}), {2});
  ASSERT_FALSE(Wrong.ok());
  EXPECT_EQ(Wrong.diagnostic().Code, DiagCode::ShackleMismatch);
  EXPECT_NE(Wrong.diagnostic().Message.find("does not target"),
            std::string::npos);
  // Wrong number of reference indices.
  Expected<DataShackle> Short = DataShackle::tryOnRefs(
      *Spec.Prog, DataBlocking::rectangular(0, {8, 8}), {});
  ASSERT_FALSE(Short.ok());
  EXPECT_EQ(Short.diagnostic().Code, DiagCode::ShackleMismatch);
  // Out-of-range reference index.
  Expected<DataShackle> Range = DataShackle::tryOnRefs(
      *Spec.Prog, DataBlocking::rectangular(0, {8, 8}), {99});
  ASSERT_FALSE(Range.ok());
  EXPECT_EQ(Range.diagnostic().Code, DiagCode::ShackleMismatch);
}

TEST(DescribeChain, RendersBlockingAndRefs) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::string D = describeChain(P, choleskyShackleStores(P, 64));
  EXPECT_NE(D.find("block A 64x64"), std::string::npos) << D;
  EXPECT_NE(D.find("(cols,rows)"), std::string::npos) << D;
  EXPECT_NE(D.find("S1=A[J,J]"), std::string::npos) << D;
  EXPECT_NE(D.find("S3=A[L,K]"), std::string::npos) << D;
}

TEST(DescribeChain, MarksProductsAndReversal) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleCxA(P, 16);
  Chain.Factors[1].Blocking.Planes[0].Reversed = true;
  std::string D = describeChain(P, Chain);
  EXPECT_NE(D.find(" x "), std::string::npos) << D;
  EXPECT_NE(D.find("16r"), std::string::npos) << D;
  EXPECT_NE(D.find("block C"), std::string::npos) << D;
  EXPECT_NE(D.find("block A"), std::string::npos) << D;
}

} // namespace
