//===- service_test.cpp - Plan-cache service tests ----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Tests for the shackle service subsystem (ctest label: service): the JSON
// protocol, canonical plan keys, binary plan round-trips, snapshot-file
// corruption handling, the single-flight concurrent plan cache, cached
// factor-verdict reuse, and the Unix-socket daemon end to end — N
// concurrent clients, exactly one compilation, bitwise-identical results.
// The suite runs under tsan with the parallel/chaos suites.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "polyhedral/OmegaTest.h"
#include "programs/Benchmarks.h"
#include "programs/Registry.h"
#include "service/Json.h"
#include "service/PlanCache.h"
#include "service/PlanKey.h"
#include "service/PlanSerdes.h"
#include "service/Server.h"
#include "service/Service.h"
#include "service/VerdictCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace shackle;

namespace {

#ifndef SHACKLE_CLI_PATH
#error "SHACKLE_CLI_PATH must be defined by the build"
#endif

/// Runs the CLI with \p Args; returns (exit code, combined stdout+stderr).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Cmd = std::string(SHACKLE_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, Got);
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

/// A per-test unique temp path (tests run concurrently under ctest -j).
std::string tmpPath(const std::string &Stem) {
  static std::atomic<unsigned> Counter{0};
  return testing::TempDir() + "shksvc_" + std::to_string(getpid()) + "_" +
         std::to_string(Counter.fetch_add(1)) + "_" + Stem;
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(Data.data(), 1, Data.size(), F), Data.size());
  std::fclose(F);
}

std::string readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr);
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  std::fclose(F);
  return Out;
}

/// Parses a service reply; fails the test on malformed JSON.
JsonValue parseReply(const std::string &Line) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Line, V, &Err)) << Err << " in: " << Line;
  return V;
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(ServiceJson, RoundTripAndAccessors) {
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(
      R"({"op":"run","n":42,"x":1.5,"flag":true,"none":null,)"
      R"("s":"a\"b\\c\n","arr":[1,2,3],"obj":{"k":"v"}})",
      V, &Err))
      << Err;
  EXPECT_EQ(V.getString("op"), "run");
  EXPECT_EQ(V.getInt("n", -1), 42);
  EXPECT_DOUBLE_EQ(V.get("x").asNumber(), 1.5);
  EXPECT_TRUE(V.getBool("flag", false));
  EXPECT_TRUE(V.get("none").isNull());
  EXPECT_EQ(V.get("s").asString(), "a\"b\\c\n");
  ASSERT_EQ(V.get("arr").asArray().size(), 3u);
  EXPECT_EQ(V.get("arr").asArray()[2].asInt(), 3);
  EXPECT_EQ(V.get("obj").getString("k"), "v");
  // Missing fields fall back to defaults, never crash.
  EXPECT_EQ(V.getInt("missing", 7), 7);
  EXPECT_TRUE(V.get("missing").isNull());

  // Serialization round-trips (integral numbers stay integral).
  JsonValue V2;
  ASSERT_TRUE(parseJson(V.str(), V2, &Err)) << Err;
  EXPECT_EQ(V2.str(), V.str());
  EXPECT_NE(V.str().find("\"n\":42"), std::string::npos);
}

TEST(ServiceJson, RejectsMalformedInput) {
  JsonValue V;
  std::string Err;
  const char *Bad[] = {
      "",           "{",           "{\"a\":}",     "[1,2",
      "tru",        "\"unclosed",  "{\"a\":1} x",  "1.2.3",
      "{\"a\" 1}",  "\"\\u0041\"", // \uXXXX unsupported by design
  };
  for (const char *Src : Bad) {
    Err.clear();
    EXPECT_FALSE(parseJson(Src, V, &Err)) << "accepted: " << Src;
    EXPECT_FALSE(Err.empty()) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Canonical plan keys
//===----------------------------------------------------------------------===//

const char *MmmDsl = R"(
param N
array C[N][N]
array A[N][N]
array B[N][N]
do I = 0, N-1
  do J = 0, N-1
    do K = 0, N-1
      S1: C[I][J] = C[I][J] + A[I][K]*B[K][J]
    end
  end
end
)";

// Same program, different whitespace and comments.
const char *MmmDslNoisy = R"(
# matrix multiply, C += A*B
param N

array C[N][N]
array A[N][N]   # the left operand
array B[N][N]
do I = 0, N-1
    do J = 0, N-1
   do K = 0, N-1
        S1: C[I][J] = C[I][J] + A[I][K]*B[K][J]
      end
  end
end
)";

TEST(ServicePlanKey, WhitespaceAndCommentsCanonicalize) {
  ParseResult R1 = parseProgram(MmmDsl);
  ParseResult R2 = parseProgram(MmmDslNoisy);
  ASSERT_TRUE(R1) << R1.Error;
  ASSERT_TRUE(R2) << R2.Error;
  EXPECT_EQ(canonicalProgramHash(*R1.Prog), canonicalProgramHash(*R2.Prog));

  MachineShape Shape{4, 1};
  auto Key = [&](const Program &P) {
    ShackleChain Chain;
    Chain.Factors.push_back(
        DataShackle::onStores(P, DataBlocking::rectangular(0, {16, 16})));
    return makePlanKey(P, Chain, {48}, 0, Shape);
  };
  EXPECT_EQ(Key(*R1.Prog).digest(), Key(*R2.Prog).digest());
  EXPECT_TRUE(Key(*R1.Prog) == Key(*R2.Prog));
}

TEST(ServicePlanKey, EveryComponentChangesTheKey) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  MachineShape Shape{4, 1};
  ShackleChain Base = mmmShackleC(P, 16);
  PlanKey K0 = makePlanKey(P, Base, {48}, 0, Shape);

  // Block size.
  EXPECT_NE(makePlanKey(P, mmmShackleC(P, 32), {48}, 0, Shape).digest(),
            K0.digest());
  // Shackle spec (different config entirely).
  EXPECT_NE(makePlanKey(P, mmmShackleCxA(P, 16), {48}, 0, Shape).digest(),
            K0.digest());
  // Spec detail: a reversed plane walk.
  ShackleChain Rev = mmmShackleC(P, 16);
  Rev.Factors[0].Blocking.Planes[0].Reversed = true;
  EXPECT_NE(makePlanKey(P, Rev, {48}, 0, Shape).digest(), K0.digest());
  // Parameter values.
  EXPECT_NE(makePlanKey(P, Base, {64}, 0, Shape).digest(), K0.digest());
  // Task level — and 'auto' is distinct from every fixed level.
  EXPECT_NE(makePlanKey(P, Base, {48}, 1, Shape).digest(), K0.digest());
  EXPECT_NE(
      makePlanKey(P, Base, {48}, PlanKeyAutoTaskLevel, Shape).digest(),
      K0.digest());
  // Machine shape.
  EXPECT_NE(makePlanKey(P, Base, {48}, 0, MachineShape{8, 2}).digest(),
            K0.digest());
  // The program itself.
  BenchSpec Chol = makeCholeskyRight();
  ShackleChain CChain = choleskyShackleStores(*Chol.Prog, 16);
  EXPECT_NE(makePlanKey(*Chol.Prog, CChain, {48}, 0, Shape).digest(),
            K0.digest());
}

//===----------------------------------------------------------------------===//
// Plan serialization
//===----------------------------------------------------------------------===//

TEST(ServiceSerdes, RoundTripExecutesBitwiseIdentical) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleC(P, 16);
  ParallelPlan Built = ParallelPlan::build(P, Chain, {48});
  ASSERT_TRUE(Built.parallelReady());

  std::string Blob = serializePlan(Built);
  ASSERT_FALSE(Blob.empty());
  ParallelPlanParts Parts;
  std::string Err;
  ASSERT_TRUE(deserializePlan(Blob, P, Parts, &Err)) << Err;
  ParallelPlan Revived = ParallelPlan::fromParts(std::move(Parts));
  EXPECT_TRUE(Revived.parallelReady());
  EXPECT_EQ(Revived.tier(), Built.tier());
  EXPECT_EQ(Revived.partition().Tasks.size(), Built.partition().Tasks.size());
  EXPECT_EQ(Revived.graph().numBlocks(), Built.graph().numBlocks());

  ProgramInstance A(P, {48}), B(P, {48});
  A.fillRandom(1, 0.5, 1.5);
  B.fillRandom(1, 0.5, 1.5);
  Built.run(A, 2);
  Revived.run(B, 2);
  EXPECT_TRUE(A.bitwiseEqual(B));
}

TEST(ServiceSerdes, RejectsTruncatedAndCorruptBlobs) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Built = ParallelPlan::build(P, mmmShackleC(P, 16), {48});
  std::string Blob = serializePlan(Built);
  ASSERT_GT(Blob.size(), 16u);

  ParallelPlanParts Parts;
  std::string Err;
  // Every truncation point must fail cleanly, never crash or over-read.
  for (size_t Len : {size_t(0), size_t(3), Blob.size() / 2, Blob.size() - 1})
    EXPECT_FALSE(
        deserializePlan(Blob.substr(0, Len), P, Parts, &Err))
        << "len " << Len;
  // A wrong program must be rejected by validation (different statement
  // and parameter counts), not crash.
  BenchSpec Chol = makeCholeskyRight();
  EXPECT_FALSE(deserializePlan(Blob, *Chol.Prog, Parts, &Err));
}

//===----------------------------------------------------------------------===//
// Snapshot files
//===----------------------------------------------------------------------===//

TEST(ServiceSnapshot, MissingFileIsACleanColdStart) {
  std::vector<SnapshotEntry> Entries;
  Status S = loadSnapshotFile(tmpPath("nonexistent.bin"), Entries);
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(Entries.empty());
}

TEST(ServiceSnapshot, MalformedFilesLoadAsEmptyWithDiagnostic) {
  // Build one real snapshot to mutate.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Built = ParallelPlan::build(P, mmmShackleC(P, 16), {48});
  PlanKey Key = makePlanKey(P, mmmShackleC(P, 16), {48}, 0, {4, 1});
  std::string Good = tmpPath("good.bin");
  ASSERT_TRUE(
      saveSnapshotFile(Good, {SnapshotEntry{Key, serializePlan(Built)}})
          .ok());
  std::string Bytes = readFile(Good);
  ASSERT_GT(Bytes.size(), 32u);

  auto ExpectRejected = [](const std::string &Path) {
    std::vector<SnapshotEntry> Entries;
    Status S = loadSnapshotFile(Path, Entries);
    EXPECT_FALSE(S.ok()) << Path;
    EXPECT_TRUE(Entries.empty());
    EXPECT_NE(S.diagnostic().Message.find("[service-cache]"),
              std::string::npos);
    EXPECT_NE(S.diagnostic().Message.find("empty cache"), std::string::npos);
  };

  // Truncated at several points (including mid-header and mid-entry).
  for (size_t Len : {size_t(4), size_t(17), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    std::string Path = tmpPath("trunc.bin");
    writeFile(Path, Bytes.substr(0, Len));
    ExpectRejected(Path);
  }
  // Arbitrary garbage.
  {
    std::string Path = tmpPath("garbage.bin");
    writeFile(Path, "this is not a snapshot file at all, not even close");
    ExpectRejected(Path);
  }
  // A single flipped bit in the payload breaks the whole-file checksum.
  {
    std::string Flipped = Bytes;
    Flipped[Bytes.size() / 2] ^= 0x10;
    std::string Path = tmpPath("bitflip.bin");
    writeFile(Path, Flipped);
    ExpectRejected(Path);
  }
  // The pristine file still loads.
  std::vector<SnapshotEntry> Entries;
  EXPECT_TRUE(loadSnapshotFile(Good, Entries).ok());
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_TRUE(Entries[0].Key == Key);
}

TEST(ServiceSnapshot, CorruptSnapshotNeverBlocksDaemonStartup) {
  // Satellite regression: `shackle serve` over a truncated snapshot warns
  // and serves cold — startup succeeds, exit code 0.
  std::string Snap = tmpPath("bad-snap.bin");
  writeFile(Snap, "SHKP"); // shorter than the fixed header
  std::string Sock = tmpPath("s.sock");

  std::pair<int, std::string> Serve;
  std::thread Server([&] {
    Serve = runCli("serve --socket=" + Sock + " --snapshot=" + Snap);
  });
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, R"({"op":"shutdown"})", Reply, &Err))
      << Err;
  Server.join();
  EXPECT_EQ(Serve.first, 0) << Serve.second;
  EXPECT_NE(Serve.second.find("[service-cache] rejecting"),
            std::string::npos)
      << Serve.second;
  EXPECT_NE(Serve.second.find("empty cache"), std::string::npos);
  EXPECT_NE(Serve.second.find("service:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PlanCache: single-flight and eviction
//===----------------------------------------------------------------------===//

TEST(ServicePlanCache, SingleFlightCompilesOnceAcrossEightThreads) {
  auto Spec = std::make_shared<BenchSpec>(makeMatMul());
  std::shared_ptr<const Program> Prog(Spec, Spec->Prog.get());
  ShackleChain Chain = mmmShackleC(*Prog, 16);
  PlanKey Key = makePlanKey(*Prog, Chain, {48}, 0, {4, 1});

  PlanCache Cache;
  std::atomic<unsigned> Builds{0};
  auto Build = [&] {
    Builds.fetch_add(1);
    // Hold the flight open long enough that every late thread must wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return ParallelPlan::build(*Prog, Chain, {48});
  };

  std::vector<std::thread> Threads;
  std::vector<PlanCache::Outcome> Outcomes(8);
  for (int I = 0; I < 8; ++I)
    Threads.emplace_back(
        [&, I] { Outcomes[I] = Cache.getOrBuild(Key, Prog, Build); });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Builds.load(), 1u);
  for (const PlanCache::Outcome &O : Outcomes) {
    ASSERT_NE(O.Plan, nullptr) << O.Error;
    EXPECT_EQ(O.Plan, Outcomes[0].Plan); // literally the same plan
  }
  PlanCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 7u);
  EXPECT_GE(S.Coalesced, 1u); // the 100ms flight guarantees overlap
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ServicePlanCache, LruEvictsToPendingBlobAndRevives) {
  auto Spec = std::make_shared<BenchSpec>(makeMatMul());
  std::shared_ptr<const Program> Prog(Spec, Spec->Prog.get());
  ShackleChain Chain = mmmShackleC(*Prog, 8);

  // A cache far too small for 20 plans: 16 shards * 64B budget. With 20
  // distinct keys over 16 shards some shard holds two, so eviction must
  // fire; evicted plans demote to pending blobs, not oblivion.
  PlanCache Cache(/*MaxBytes=*/16 * 64);
  unsigned Builds = 0;
  std::vector<PlanKey> Keys;
  for (int64_t N = 16; N < 36; ++N) {
    PlanKey Key = makePlanKey(*Prog, Chain, {N}, 0, {4, 1});
    Keys.push_back(Key);
    PlanCache::Outcome O = Cache.getOrBuild(Key, Prog, [&] {
      ++Builds;
      return ParallelPlan::build(*Prog, Chain, {N});
    });
    ASSERT_NE(O.Plan, nullptr) << O.Error;
  }
  PlanCacheStats S = Cache.stats();
  EXPECT_EQ(Builds, 20u);
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_GT(S.PendingBlobs, 0u);

  // Every key is still servable without recompiling: live entries hit,
  // evicted ones revive from their pending blob.
  unsigned Rebuilds = 0;
  for (const PlanKey &Key : Keys) {
    PlanCache::Outcome O = Cache.getOrBuild(Key, Prog, [&] {
      ++Rebuilds;
      return ParallelPlan::build(*Prog, Chain, {16});
    });
    ASSERT_NE(O.Plan, nullptr);
    EXPECT_TRUE(O.Hit);
  }
  EXPECT_EQ(Rebuilds, 0u);
}

//===----------------------------------------------------------------------===//
// Verdict cache: factor reuse
//===----------------------------------------------------------------------===//

TEST(ServiceVerdicts, LegalPrefixSkipsSolverQueries) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  // Two CxA levels: the outer level's two factors are a prefix of the
  // four-factor two-level chain.
  ShackleChain Two = mmmShackleTwoLevel(P, 16, 4);
  ASSERT_EQ(Two.Factors.size(), 4u);
  ShackleChain Prefix = mmmShackleCxA(P, 16);
  ASSERT_EQ(Prefix.Factors.size(), 2u);
  EXPECT_EQ(fingerprintChainPrefix(P, Prefix, 2),
            fingerprintChainPrefix(P, Two, 2));

  VerdictCache VC;
  EXPECT_EQ(VC.lookup(P, Two).SkipBlockDims, 0u);

  // Proving the prefix legal lets the longer chain skip its dims...
  LegalityResult PR = checkLegality(P, Prefix);
  ASSERT_TRUE(PR.Legal);
  VC.record(P, Prefix, PR.Verdict);
  VerdictReuse Reuse = VC.lookup(P, Two);
  EXPECT_EQ(Reuse.SkipFactors, 2u);
  EXPECT_EQ(Reuse.SkipBlockDims, Two.numBlockDimsPrefix(2));
  EXPECT_GT(Reuse.SkipBlockDims, 0u);

  // ...and the skipping check agrees with the full check while running
  // strictly fewer queries.
  LegalityCheckStats Full, Skipped;
  LegalityResult R1 =
      checkLegalityFrom(P, Two, 0, true, SolverBudget(), &Full);
  LegalityResult R2 = checkLegalityFrom(P, Two, Reuse.SkipBlockDims, true,
                                        SolverBudget(), &Skipped);
  EXPECT_EQ(R1.Verdict, R2.Verdict);
  EXPECT_GT(Skipped.QueriesSkipped, 0u);
  EXPECT_LT(Skipped.QueriesRun, Full.QueriesRun);

  // A legal full chain records every prefix.
  VC.record(P, Two, R1.Verdict);
  EXPECT_EQ(VC.lookup(P, Two).SkipFactors, 4u);
}

TEST(ServiceVerdicts, KnownIllegalSkipsTheSolverEntirely) {
  // Reversing the Cholesky column walk is illegal (legality_test).
  BenchSpec Chol = makeCholeskyRight();
  const Program &P = *Chol.Prog;
  DataBlocking B = DataBlocking::rectangular(0, {4, 4}, {1, 0});
  B.Planes[0].Reversed = true;
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(P, B));

  LegalityResult LR = checkLegality(P, Chain);
  ASSERT_EQ(LR.Verdict, LegalityVerdict::Illegal);
  VerdictCache VC;
  VC.record(P, Chain, LR.Verdict);
  EXPECT_TRUE(VC.lookup(P, Chain).KnownIllegal);

  // A known-illegal build reaches the original tier without any solver
  // query.
  uint64_t Before = solverQueryCount();
  ParallelPlanOptions Opts;
  Opts.LegalityKnownIllegal = true;
  ParallelPlan Plan = ParallelPlan::build(P, Chain, {24}, Opts);
  EXPECT_EQ(solverQueryCount(), Before);
  EXPECT_EQ(Plan.tier(), CodegenTier::Original);

  // Semantics survive: the original-tier plan computes the same result as
  // an untainted build of the same (illegal) request.
  ParallelPlan Fresh = ParallelPlan::build(P, Chain, {24});
  EXPECT_EQ(Fresh.tier(), CodegenTier::Original);
  ProgramInstance X(P, {24}), Y(P, {24});
  X.fillRandom(1, 0.5, 1.5);
  Y.fillRandom(1, 0.5, 1.5);
  Plan.run(X, 2);
  Fresh.run(Y, 2);
  EXPECT_TRUE(X.bitwiseEqual(Y));
}

//===----------------------------------------------------------------------===//
// ServiceCore
//===----------------------------------------------------------------------===//

TEST(ServiceCore, MalformedRequestsGetErrorRepliesNeverCrash) {
  ServiceCore Core;
  auto Code = [&](const std::string &Line) {
    JsonValue R = parseReply(Core.handleLine(Line));
    EXPECT_FALSE(R.getBool("ok", true));
    return R.getString("code");
  };
  EXPECT_EQ(Code("this is not json"), "parse-error");
  EXPECT_EQ(Code("{\"op\":\"run\"}"), "usage-error"); // no params
  EXPECT_EQ(Code("{\"op\":\"frobnicate\",\"params\":[1]}"), "usage-error");
  EXPECT_EQ(Code("{\"op\":\"run\",\"benchmark\":\"no-such\",\"params\":[8]}"),
            "usage-error");
  EXPECT_EQ(Code("{\"op\":\"run\",\"benchmark\":\"matmul\",\"config\":\"zz\","
                 "\"params\":[8]}"),
            "usage-error");
  // Wrong param arity.
  EXPECT_EQ(Code("{\"op\":\"run\",\"benchmark\":\"matmul\",\"config\":\"c\","
                 "\"params\":[8,9]}"),
            "usage-error");
  // DSL that does not parse.
  EXPECT_EQ(Code("{\"op\":\"compile\",\"dsl\":\"do wat\",\"array\":\"A\","
                 "\"params\":[]}"),
            "parse-error");
  ServiceStats S = Core.stats();
  EXPECT_GT(S.Errors, 0u);
}

TEST(ServiceCore, VerdictReuseAcrossParamValues) {
  // Two compiles of the same benchmark at different parameter values miss
  // the plan cache both times (the partition is size-specific) but share
  // the legality proof: the second runs zero solver queries.
  ServiceCore Core;
  JsonValue R1 = parseReply(Core.handleLine(
      R"({"op":"compile","benchmark":"matmul","config":"c","block":16,"params":[48]})"));
  ASSERT_TRUE(R1.getBool("ok", false)) << R1.str();
  EXPECT_GT(R1.getInt("solver_queries_run", -1), 0);
  EXPECT_EQ(R1.getInt("solver_queries_skipped", -1), 0);

  JsonValue R2 = parseReply(Core.handleLine(
      R"({"op":"compile","benchmark":"matmul","config":"c","block":16,"params":[64]})"));
  ASSERT_TRUE(R2.getBool("ok", false)) << R2.str();
  EXPECT_FALSE(R2.getBool("hit", true));
  EXPECT_EQ(R2.getInt("solver_queries_run", -1), 0);
  EXPECT_GT(R2.getInt("solver_queries_skipped", -1), 0);

  ServiceStats S = Core.stats();
  EXPECT_EQ(S.Cache.Misses, 2u);
  EXPECT_GT(S.SolverCallsSaved, 0u);
  EXPECT_NE(Core.statsLine().find("solver-saved="), std::string::npos);
}

TEST(ServiceCore, WarmRunSkipsOmegaSimplificationAndDagEntirely) {
  // The headline acceptance criterion: a warm `run` executes without a
  // single solver query, and its result is bitwise-identical to the cold
  // run's (equal result checksums).
  ServiceCore Core;
  const std::string Req =
      R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[48],"threads":2})";
  JsonValue Cold = parseReply(Core.handleLine(Req));
  ASSERT_TRUE(Cold.getBool("ok", false)) << Cold.str();
  EXPECT_FALSE(Cold.getBool("hit", true));

  uint64_t Before = solverQueryCount();
  JsonValue Warm = parseReply(Core.handleLine(Req));
  ASSERT_TRUE(Warm.getBool("ok", false)) << Warm.str();
  EXPECT_TRUE(Warm.getBool("hit", false));
  EXPECT_EQ(solverQueryCount(), Before)
      << "warm run must not reach the solver";
  EXPECT_EQ(Warm.getString("checksum"), Cold.getString("checksum"));
  EXPECT_FALSE(Warm.getString("checksum").empty());

  ServiceStats S = Core.stats();
  EXPECT_EQ(S.Cache.Misses, 1u);
  EXPECT_EQ(S.Cache.Hits, 1u);
}

TEST(ServiceCore, DslRequestsWorkAndCanonicalizeAcrossClients) {
  // Two clients sending the same program with different formatting share
  // one cache entry.
  ServiceCore Core;
  auto Req = [](const char *Dsl) {
    JsonValue R = JsonValue::object();
    R.set("op", JsonValue::string("run"));
    R.set("dsl", JsonValue::string(Dsl));
    R.set("array", JsonValue::string("C"));
    R.set("block", JsonValue::integer(16));
    JsonValue Params = JsonValue::array();
    Params.push(JsonValue::integer(32));
    R.set("params", Params);
    return R.str();
  };
  JsonValue R1 = parseReply(Core.handleLine(Req(MmmDsl)));
  ASSERT_TRUE(R1.getBool("ok", false)) << R1.str();
  JsonValue R2 = parseReply(Core.handleLine(Req(MmmDslNoisy)));
  ASSERT_TRUE(R2.getBool("ok", false)) << R2.str();
  EXPECT_EQ(R1.getString("key"), R2.getString("key"));
  EXPECT_TRUE(R2.getBool("hit", false));
  EXPECT_EQ(R1.getString("checksum"), R2.getString("checksum"));
}

TEST(ServiceCore, SnapshotRoundTripServesWarmAfterRestart) {
  std::string Snap = tmpPath("core-snap.bin");
  const std::string Req =
      R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[48]})";
  std::string ColdChecksum;
  {
    ServiceOptions Opts;
    Opts.SnapshotPath = Snap;
    ServiceCore Core(Opts);
    ASSERT_TRUE(Core.loadSnapshot().ok());
    JsonValue R = parseReply(Core.handleLine(Req));
    ASSERT_TRUE(R.getBool("ok", false)) << R.str();
    ColdChecksum = R.getString("checksum");
    ASSERT_TRUE(Core.saveSnapshot().ok());
  }
  {
    ServiceOptions Opts;
    Opts.SnapshotPath = Snap;
    ServiceCore Core(Opts);
    ASSERT_TRUE(Core.loadSnapshot().ok());
    EXPECT_EQ(Core.cache().stats().PendingBlobs, 1u);
    uint64_t Before = solverQueryCount();
    JsonValue R = parseReply(Core.handleLine(Req));
    ASSERT_TRUE(R.getBool("ok", false)) << R.str();
    EXPECT_TRUE(R.getBool("hit", false));
    EXPECT_TRUE(R.getBool("from_snapshot", false));
    EXPECT_EQ(solverQueryCount(), Before);
    EXPECT_EQ(R.getString("checksum"), ColdChecksum);
    EXPECT_EQ(Core.stats().Cache.Misses, 0u);
  }
}

//===----------------------------------------------------------------------===//
// The daemon end to end
//===----------------------------------------------------------------------===//

TEST(ServiceServer, EightConcurrentClientsOneCompilationIdenticalResults) {
  ServiceCore Core;
  std::string Sock = tmpPath("e2e.sock");
  ServiceServer Server(Core, Sock);
  ASSERT_TRUE(Server.start().ok());
  std::thread ServerThread([&] { Server.serve(); });

  const std::string Req =
      R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[48],"threads":2})";
  std::vector<std::thread> Clients;
  std::vector<std::string> Replies(8);
  std::vector<std::string> Errs(8);
  for (int I = 0; I < 8; ++I)
    Clients.emplace_back([&, I] {
      if (!serviceRequest(Sock, Req, Replies[I], &Errs[I]))
        Replies[I].clear();
    });
  for (std::thread &T : Clients)
    T.join();

  std::string Checksum;
  for (int I = 0; I < 8; ++I) {
    ASSERT_FALSE(Replies[I].empty()) << Errs[I];
    JsonValue R = parseReply(Replies[I]);
    ASSERT_TRUE(R.getBool("ok", false)) << Replies[I];
    if (Checksum.empty())
      Checksum = R.getString("checksum");
    EXPECT_EQ(R.getString("checksum"), Checksum)
        << "clients must observe bitwise-identical results";
  }

  // Exactly one compilation, in every interleaving: single-flight makes
  // this deterministic even though the coalesce count is timing-dependent.
  ServiceStats S = Core.stats();
  EXPECT_EQ(S.Cache.Misses, 1u);
  EXPECT_EQ(S.Cache.Hits, 7u);

  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, R"({"op":"shutdown"})", Reply, &Err))
      << Err;
  ServerThread.join();
}

TEST(ServiceServer, ConcurrentMissesCoalesceOntoOneFlight) {
  // The coalesce counter needs genuinely overlapping misses, which no
  // scheduler guarantees; each round targets a fresh key (new parameter
  // value) and we retry until overlap happens. Single-flight still
  // guarantees one miss per round, so the retries stay cheap.
  ServiceCore Core;
  std::string Sock = tmpPath("coalesce.sock");
  ServiceServer Server(Core, Sock);
  ASSERT_TRUE(Server.start().ok());
  std::thread ServerThread([&] { Server.serve(); });

  bool Coalesced = false;
  for (int Round = 0; Round < 6 && !Coalesced; ++Round) {
    int64_t N = 40 + Round; // fresh plan key each round
    std::string Req =
        "{\"op\":\"compile\",\"benchmark\":\"matmul\",\"config\":\"c\","
        "\"block\":16,\"params\":[" +
        std::to_string(N) + "]}";
    std::vector<std::thread> Clients;
    for (int I = 0; I < 8; ++I)
      Clients.emplace_back([&] {
        std::string Reply, Err;
        EXPECT_TRUE(serviceRequest(Sock, Req, Reply, &Err)) << Err;
      });
    for (std::thread &T : Clients)
      T.join();
    Coalesced = Core.stats().Cache.Coalesced > 0;
  }
  EXPECT_TRUE(Coalesced)
      << "no overlap in 6 rounds of 8 concurrent cold misses";

  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, R"({"op":"shutdown"})", Reply, &Err))
      << Err;
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// CLI
//===----------------------------------------------------------------------===//

TEST(ServiceCli, PlanCacheFlagReportsMissThenHit) {
  std::string Cache = tmpPath("cli-cache.bin");
  std::string Args =
      "run matmul c --block=16 --params=48 --plan-cache=" + Cache;
  auto [Rc1, Out1] = runCli(Args);
  EXPECT_EQ(Rc1, 0) << Out1;
  EXPECT_NE(Out1.find("plan-cache: miss"), std::string::npos) << Out1;

  auto [Rc2, Out2] = runCli(Args);
  EXPECT_EQ(Rc2, 0) << Out2;
  EXPECT_NE(Out2.find("plan-cache: hit"), std::string::npos) << Out2;
  // The warm run still executes and reports normally.
  EXPECT_NE(Out2.find("ran "), std::string::npos) << Out2;

  // A corrupted cache file degrades to a warned cold start, never failure.
  writeFile(Cache, "junk");
  auto [Rc3, Out3] = runCli(Args);
  EXPECT_EQ(Rc3, 0) << Out3;
  EXPECT_NE(Out3.find("[service-cache] rejecting"), std::string::npos)
      << Out3;
  EXPECT_NE(Out3.find("plan-cache: miss"), std::string::npos) << Out3;
}

TEST(ServiceCli, ServeAndRequestEndToEndWithPersistence) {
  std::string Sock = tmpPath("cli.sock");
  std::string Snap = tmpPath("cli-snap.bin");
  const std::string RunJson =
      R"('{"op":"run","benchmark":"matmul","config":"c","block":16,"params":[48],"threads":2}')";

  // Session 1: cold compile, then shutdown (which persists the snapshot).
  std::pair<int, std::string> Serve1;
  std::thread S1([&] {
    Serve1 = runCli("serve --socket=" + Sock + " --snapshot=" + Snap);
  });
  auto [RunRc, RunOut] =
      runCli("request --socket=" + Sock + " --json=" + RunJson);
  ASSERT_EQ(RunRc, 0) << RunOut;
  JsonValue R1 = parseReply(RunOut.substr(0, RunOut.find('\n')));
  ASSERT_TRUE(R1.getBool("ok", false)) << RunOut;
  EXPECT_FALSE(R1.getBool("hit", true));
  std::string Checksum = R1.getString("checksum");

  auto [StopRc, StopOut] = runCli("request --socket=" + Sock +
                                  R"( --json='{"op":"shutdown"}')");
  EXPECT_EQ(StopRc, 0) << StopOut;
  S1.join();
  EXPECT_EQ(Serve1.first, 0) << Serve1.second;
  EXPECT_NE(Serve1.second.find("service: hits=0 misses=1"),
            std::string::npos)
      << Serve1.second;

  // Session 2: the same request is warm from the persisted snapshot and
  // bitwise-identical.
  std::pair<int, std::string> Serve2;
  std::thread S2([&] {
    Serve2 = runCli("serve --socket=" + Sock + " --snapshot=" + Snap);
  });
  auto [RunRc2, RunOut2] =
      runCli("request --socket=" + Sock + " --json=" + RunJson);
  ASSERT_EQ(RunRc2, 0) << RunOut2;
  JsonValue R2 = parseReply(RunOut2.substr(0, RunOut2.find('\n')));
  ASSERT_TRUE(R2.getBool("ok", false)) << RunOut2;
  EXPECT_TRUE(R2.getBool("hit", false));
  EXPECT_TRUE(R2.getBool("from_snapshot", false));
  EXPECT_EQ(R2.getString("checksum"), Checksum);

  auto [StatsRc, StatsOut] = runCli("request --socket=" + Sock +
                                    R"( --json='{"op":"stats"}')");
  EXPECT_EQ(StatsRc, 0) << StatsOut;
  JsonValue Stats = parseReply(StatsOut.substr(0, StatsOut.find('\n')));
  EXPECT_EQ(Stats.getInt("misses", -1), 0);
  EXPECT_EQ(Stats.getInt("hits", -1), 1);

  runCli("request --socket=" + Sock + R"( --json='{"op":"shutdown"}')");
  S2.join();
  EXPECT_EQ(Serve2.first, 0) << Serve2.second;
}

} // namespace
