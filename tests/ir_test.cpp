//===- ir_test.cpp - Loop-nest IR, schedules, layouts -------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Program.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(AffineExpr, Arithmetic) {
  AffineExpr X = AffineExpr::var(3, 0);
  AffineExpr Y = AffineExpr::var(3, 1);
  AffineExpr E = X * 2 + Y - 5;
  EXPECT_EQ(E.getCoeff(0), 2);
  EXPECT_EQ(E.getCoeff(1), 1);
  EXPECT_EQ(E.getCoeff(2), 0);
  EXPECT_EQ(E.getConstant(), -5);
  EXPECT_EQ(E.evaluate({3, 4, 99}), 5);
  EXPECT_FALSE(E.isConstant());
  EXPECT_TRUE(AffineExpr::constant(3, 7).isConstant());
  EXPECT_EQ((E - E).evaluate({1, 2, 3}), 0);
}

TEST(AffineExpr, Printing) {
  std::vector<std::string> Names = {"i", "j"};
  AffineExpr E = AffineExpr::var(2, 0) * 25 - AffineExpr::var(2, 1) + 3;
  EXPECT_EQ(E.str(Names), "25*i - j + 3");
  EXPECT_EQ(AffineExpr::constant(2, -4).str(Names), "-4");
}

TEST(Program, SchedulesEncodeImperfectNesting) {
  // Right-looking Cholesky: S1 at (0, J, 0); S2 at (0, J, 1, I, 0);
  // S3 at (0, J, 2, L, 0, K, 0).
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ASSERT_EQ(P.getNumStmts(), 3u);
  const Stmt &S1 = P.getStmt(0), &S2 = P.getStmt(1), &S3 = P.getStmt(2);
  EXPECT_EQ(S1.getDepth(), 1u);
  EXPECT_EQ(S2.getDepth(), 2u);
  EXPECT_EQ(S3.getDepth(), 3u);
  EXPECT_EQ(S1.Schedule, (std::vector<unsigned>{0, 0}));
  EXPECT_EQ(S2.Schedule, (std::vector<unsigned>{0, 1, 0}));
  EXPECT_EQ(S3.Schedule, (std::vector<unsigned>{0, 2, 0, 0}));
  // All three share the outer J loop variable.
  EXPECT_EQ(S1.LoopVars[0], S2.LoopVars[0]);
  EXPECT_EQ(S1.LoopVars[0], S3.LoopVars[0]);
}

TEST(Program, RefsEnumerateStoreThenLoads) {
  BenchSpec Spec = makeCholeskyRight();
  const Stmt &S3 = Spec.Prog->getStmt(2);
  auto Refs = S3.refs();
  ASSERT_EQ(Refs.size(), 4u); // store A[L,K]; loads A[L,K], A[L,J], A[K,J].
  EXPECT_TRUE(Refs[0].second);
  for (unsigned I = 1; I < 4; ++I)
    EXPECT_FALSE(Refs[I].second);
  EXPECT_EQ(*Refs[0].first, *Refs[1].first); // Store equals first load.
}

TEST(Program, PrettyPrintMatchesPaperShape) {
  BenchSpec Spec = makeMatMul();
  EXPECT_EQ(Spec.Prog->str(),
            "do I = 0 .. N - 1\n"
            "  do J = 0 .. N - 1\n"
            "    do K = 0 .. N - 1\n"
            "      S1: C[I,J] = (C[I,J] + (A[I,K] * B[K,J]))\n");
}

TEST(Program, MultiBoundLoopsPrintMinMax) {
  BenchSpec Spec = makeCholeskyBanded();
  std::string S = Spec.Prog->str();
  EXPECT_NE(S.find("min(N - 1, bw + J)"), std::string::npos) << S;
}

TEST(ProgramInstance, ColMajorOffsets) {
  BenchSpec Spec = makeMatMul(); // Matrices are column-major (Fortran).
  ProgramInstance Inst(*Spec.Prog, {5});
  int64_t Idx[2] = {3, 2};
  EXPECT_EQ(Inst.offset(0, Idx), 3 + 2 * 5);
  int64_t Idx2[2] = {0, 4};
  EXPECT_EQ(Inst.offset(0, Idx2), 20);
}

TEST(ProgramInstance, BandLowerOffsets) {
  BenchSpec Spec = makeCholeskyBanded();
  ProgramInstance Inst(*Spec.Prog, {10, 3}); // N=10, bw=3.
  EXPECT_EQ(Inst.buffer(0).size(), 40u);     // (bw+1)*N.
  int64_t Diag[2] = {4, 4};
  EXPECT_EQ(Inst.offset(0, Diag), 4 * 4); // (i-j) + j*(bw+1) = 0 + 16.
  int64_t Sub[2] = {6, 4};
  EXPECT_EQ(Inst.offset(0, Sub), 2 + 16);
}

TEST(ProgramInstance, FillRandomIsDeterministicAndBounded) {
  BenchSpec Spec = makeMatMul();
  ProgramInstance A(*Spec.Prog, {8}), B(*Spec.Prog, {8});
  A.fillRandom(99, 0.25, 0.75);
  B.fillRandom(99, 0.25, 0.75);
  EXPECT_EQ(A.maxAbsDifference(B), 0.0);
  for (double V : A.buffer(1)) {
    EXPECT_GE(V, 0.25);
    EXPECT_LE(V, 0.75);
  }
}

TEST(ScalarExpr, CloneIsDeep) {
  ArrayRef R;
  R.ArrayId = 0;
  R.Indices = {AffineExpr::var(2, 0)};
  ScalarExpr::Ptr E = ScalarExpr::mul(ScalarExpr::load(R),
                                      ScalarExpr::number(2.0));
  ScalarExpr::Ptr C = E->clone();
  EXPECT_EQ(C->getKind(), ExprKind::Mul);
  EXPECT_NE(C->getLHS(), E->getLHS());
  EXPECT_EQ(C->getLHS()->getRef(), E->getLHS()->getRef());
}

TEST(BenchSpecs, FlopCountsArePositiveAndCubicish) {
  for (auto Make : {makeMatMul, makeCholeskyRight, makeCholeskyLeft,
                    makeQRHouseholder, makeGmtry}) {
    BenchSpec Spec = Make();
    double F100 = Spec.Flops({100});
    double F200 = Spec.Flops({200});
    EXPECT_GT(F100, 0.0);
    EXPECT_NEAR(F200 / F100, 8.0, 0.01) << Spec.Name;
  }
  BenchSpec ADI = makeADI();
  EXPECT_NEAR(ADI.Flops({200}) / ADI.Flops({100}), 4.0, 0.1);
}

} // namespace
