//===- bench_cache_mmm.cpp - Multi-level miss-count ablation (MMM) ------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's central "multi-level" claim, measured deterministically: the
// interpreter feeds every array access of the original, one-level blocked,
// and two-level blocked matrix multiply into a simulated two-level cache
// (32 KB L1 / 256 KB L2 here, so N = 160 fits neither level). Expected
// shape: one-level blocking (B=8 fits L1) collapses L1 misses; the
// two-level product (outer 40 for L2, inner 8 for L1) also collapses L2
// misses — the effect iteration-space tiling does not compose to.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <benchmark/benchmark.h>

using namespace shackle;

namespace {

constexpr int64_t N = 160;

CacheHierarchy makeHierarchy() {
  return CacheHierarchy({
      CacheConfig{"L1", 32 * 1024, 64, 4},
      CacheConfig{"L2", 256 * 1024, 64, 8},
  });
}

void runTraced(benchmark::State &St, const LoopNest &Nest,
               const Program &P) {
  for (auto _ : St) {
    ProgramInstance Inst(P, {N});
    Inst.fillRandom(9, 0.5, 1.5);
    CacheHierarchy H = makeHierarchy();
    // Give each array its own distant address region.
    TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
      H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
               static_cast<uint64_t>(Off) * sizeof(double));
    };
    runLoopNest(Nest, Inst, &Trace);
    St.counters["accesses"] = static_cast<double>(H.accesses());
    St.counters["L1miss"] = static_cast<double>(H.level(0).misses());
    St.counters["L2miss"] = static_cast<double>(H.level(1).misses());
    St.counters["L1miss%"] = 100.0 * static_cast<double>(H.level(0).misses()) /
                             static_cast<double>(H.accesses());
    St.counters["L2miss%"] = 100.0 * static_cast<double>(H.level(1).misses()) /
                             static_cast<double>(H.level(0).misses());
  }
}

void BM_CacheOriginal(benchmark::State &St) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest = generateOriginalCode(*Spec.Prog);
  runTraced(St, Nest, *Spec.Prog);
}

void BM_CacheOneLevel8(benchmark::State &St) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest = generateShackledCode(*Spec.Prog, mmmShackleCxA(*Spec.Prog, 8));
  runTraced(St, Nest, *Spec.Prog);
}

void BM_CacheOneLevel40(benchmark::State &St) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest =
      generateShackledCode(*Spec.Prog, mmmShackleCxA(*Spec.Prog, 40));
  runTraced(St, Nest, *Spec.Prog);
}

void BM_CacheTwoLevel40x8(benchmark::State &St) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest = generateShackledCode(*Spec.Prog,
                                       mmmShackleTwoLevel(*Spec.Prog, 40, 8));
  runTraced(St, Nest, *Spec.Prog);
}

} // namespace

BENCHMARK(BM_CacheOriginal)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheOneLevel8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheOneLevel40)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheTwoLevel40x8)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
