//===- bench_naive_vs_simplified.cpp - Figure 5 vs Figure 6 ablation ----------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's two-stage story (Section 4): the data shackle *specifies*
// which instances run with each block — naive "runtime resolution" code
// (Figure 5) realizes it with guards over the full iteration space, and the
// polyhedral simplifier merely cleans it into bounds (Figure 6). Both have
// identical memory-access patterns; this ablation measures what the
// simplification is worth in instruction overhead (the naive code executes
// (N/B)^2 times more iterations, almost all guarded off).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

Workspace makeMMMWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 41);
  WS.addArray(N * N, 42);
  WS.addArray(N * N, 43);
  WS.setParams({N});
  return WS;
}

void BM_NaiveFigure5(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_naive_c_64", WS, mmmFlops(N));
}

void BM_SimplifiedFigure6(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_shackle_c_64", WS, mmmFlops(N));
}

} // namespace

BENCHMARK(BM_NaiveFigure5)->DenseRange(100, 300, 100)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimplifiedFigure6)->DenseRange(100, 300, 100)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
