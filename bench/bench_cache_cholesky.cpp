//===- bench_cache_cholesky.cpp - Miss-count ablation (Cholesky) --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Deterministic cache-miss counts for right-looking Cholesky: the original
// imperfectly nested code against the one-level shackled code (Figure 7)
// and a two-level product, on a simulated 32 KB L1 / 256 KB L2. The paper's
// Figure 11 effect — blocked Cholesky's large constant-factor win — shows
// up here as orders-of-magnitude fewer misses at both levels.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <benchmark/benchmark.h>

using namespace shackle;

namespace {

constexpr int64_t N = 224;

CacheHierarchy makeHierarchy() {
  return CacheHierarchy({
      CacheConfig{"L1", 32 * 1024, 64, 4},
      CacheConfig{"L2", 256 * 1024, 64, 8},
  });
}

void runTraced(benchmark::State &St, const LoopNest &Nest,
               const Program &P) {
  for (auto _ : St) {
    ProgramInstance Inst(P, {N});
    Inst.fillRandom(9, 0.5, 1.5);
    for (int64_t I = 0; I < N; ++I) {
      int64_t Idx[2] = {I, I};
      Inst.buffer(0)[Inst.offset(0, Idx)] += 3.0 * static_cast<double>(N);
    }
    CacheHierarchy H = makeHierarchy();
    TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
      H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
               static_cast<uint64_t>(Off) * sizeof(double));
    };
    runLoopNest(Nest, Inst, &Trace);
    St.counters["accesses"] = static_cast<double>(H.accesses());
    St.counters["L1miss"] = static_cast<double>(H.level(0).misses());
    St.counters["L2miss"] = static_cast<double>(H.level(1).misses());
  }
}

void BM_CacheOriginal(benchmark::State &St) {
  BenchSpec Spec = makeCholeskyRight();
  LoopNest Nest = generateOriginalCode(*Spec.Prog);
  runTraced(St, Nest, *Spec.Prog);
}

void BM_CacheOneLevel8(benchmark::State &St) {
  BenchSpec Spec = makeCholeskyRight();
  LoopNest Nest =
      generateShackledCode(*Spec.Prog, choleskyShackleStores(*Spec.Prog, 8));
  runTraced(St, Nest, *Spec.Prog);
}

void BM_CacheTwoLevel40x8(benchmark::State &St) {
  BenchSpec Spec = makeCholeskyRight();
  ShackleChain Chain = choleskyShackleStores(*Spec.Prog, 40);
  ShackleChain Inner = choleskyShackleStores(*Spec.Prog, 8);
  Chain.Factors.push_back(std::move(Inner.Factors[0]));
  LoopNest Nest = generateShackledCode(*Spec.Prog, Chain);
  runTraced(St, Nest, *Spec.Prog);
}

} // namespace

BENCHMARK(BM_CacheOriginal)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheOneLevel8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheTwoLevel40x8)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
