//===- bench_parallel_mmm_multilevel.cpp - Hierarchical task graphs ------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Measures the DAG-coarsening win of hierarchical task graphs on the
// paper's two-level MMM chain (Figure 10: (C x A)@Outer x (C x A)@Inner).
//
// BM_MultilevelPlanBuild times ParallelPlan::build at task levels 0 (flat:
// one task per innermost block, the DAG ranges over all 8 block
// coordinates) and 2 (hierarchical: one task per *outer* block, inner
// levels replayed serially inside the task) and reports nodes / edges /
// dag_build_ms per configuration, so the coarsening ratio is measured from
// the JSON records rather than asserted. At {N=1024, Outer=256, Inner=64}
// the flat partition has 4096 tasks and the level-2 partition 64 - the
// acceptance bar is a >= 8x node reduction.
//
// BM_MultilevelExec times execution (plan built outside the timed region)
// flat vs hierarchical across a thread sweep at a small interpreter-
// friendly size, showing that coarsening does not cost execution-side
// parallelism when tasks >> threads.
//
// `--json out.json` records {name, n, block, threads, ns_per_iter, nodes,
// edges, dag_build_ms}; `block` carries the outer block size and the task
// level is in the benchmark name (third argument).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"

using namespace shackle;
using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

/// Args: {N, Outer, TaskLevel}; Inner is Outer/4 (clamped to >= 2) so every
/// outer block splits into a 4x4 grid of inner blocks.
void BM_MultilevelPlanBuild(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Outer = St.range(1);
  unsigned Level = static_cast<unsigned>(St.range(2));
  int64_t Inner = Outer >= 8 ? Outer / 4 : 2;

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, Outer, Inner);

  ParallelPlanOptions Opts;
  Opts.TaskLevel = Level;
  ParallelPlan Last = ParallelPlan::build(P, Chain, {N}, Opts);
  for (auto _ : St) {
    ParallelPlan Plan = ParallelPlan::build(P, Chain, {N}, Opts);
    benchmark::DoNotOptimize(Plan.parallelReady());
    Last = std::move(Plan);
  }
  if (!Last.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }
  setBenchMeta(St, N, Outer, /*Threads=*/0);
  setDagStats(St, static_cast<double>(Last.graph().numBlocks()),
              static_cast<double>(Last.graph().NumEdges), Last.dagBuildMs());
}

/// Args: {N, Outer, TaskLevel, Threads}. Plan built once outside the timed
/// region; the timed region is pure (interpreted) block execution.
void BM_MultilevelExec(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Outer = St.range(1);
  unsigned Level = static_cast<unsigned>(St.range(2));
  unsigned Threads = static_cast<unsigned>(St.range(3));
  int64_t Inner = Outer >= 8 ? Outer / 4 : 2;

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions Opts;
  Opts.TaskLevel = Level;
  ParallelPlan Plan =
      ParallelPlan::build(P, mmmShackleTwoLevel(P, Outer, Inner), {N}, Opts);
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  ProgramInstance Init(P, {N});
  Init.fillRandom(41, 0.5, 1.5);
  ProgramInstance Inst = Init;
  for (auto _ : St) {
    St.PauseTiming();
    for (unsigned A = 0; A < P.getNumArrays(); ++A)
      Inst.buffer(A) = Init.buffer(A);
    St.ResumeTiming();
    Plan.run(Inst, Threads);
    benchmark::ClobberMemory();
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      mmmFlops(N) * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
  setBenchMeta(St, N, Outer, Threads);
  setDagStats(St, static_cast<double>(Plan.graph().numBlocks()),
              static_cast<double>(Plan.graph().NumEdges), Plan.dagBuildMs());
}

void PlanSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Level : {0, 1, 2}) {
    B->Args({256, 64, Level});
    B->Args({512, 128, Level});
    // The acceptance configuration: flat = 4096 tasks over 8 block
    // coordinates, level 2 = 64 outer tasks (a 64x node reduction).
    B->Args({1024, 256, Level});
  }
}

void ExecSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Threads : {1, 2, 4, 8})
    for (int64_t Level : {0, 2})
      B->Args({64, 16, Level, Threads});
}

} // namespace

BENCHMARK(BM_MultilevelPlanBuild)
    ->Apply(PlanSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_MultilevelExec)
    ->Apply(ExecSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

SHACKLE_BENCH_MAIN()
