//===- bench_locality_mmm.cpp - Steal-locality of block placement ------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Measures how much of the paper's data-centric locality survives parallel
// execution under three placement/stealing policies on the two-level MMM
// chain (Figure 10):
//
//   mode 0  affinity     affinity-seeded homes + hierarchical local-first
//                        stealing (the default policy)
//   mode 1  round-robin  legacy round-robin seeding, successors stay with
//                        the finishing worker, deterministic flat scan
//   mode 2  random       round-robin seeding plus seeded random-victim
//                        stealing - the locality-oblivious worst case
//
// BM_LocalityExec sweeps threads {1, 2, 4, 8} at two task levels (flat and
// outer-blocks-only) and reports, per configuration, the per-run mean of
// the steal telemetry over all timed iterations: steals / local_steals /
// home_hit_pct / bytes_migrated. The acceptance bar is affinity cutting
// total steals by >= 2x against round-robin at 4+ threads. The geometry
// {N=64, Outer=16, Inner=4} is DAG-shape-equivalent to the paper-scale
// {N=1024, Outer=256, Inner=64} configuration (same block counts per
// dimension), scaled down so interpreted execution stays benchmarkable.
//
// BM_LocalityCacheMiss replays each worker's memory trace through its own
// private two-level cache simulator and reports the summed per-worker L1
// and L2 miss counts (l1_misses / l2_misses), making the cache cost of
// locality-oblivious stealing visible, not just the steal counts.
//
// BM_LocalitySim runs the same three policies through a deterministic
// discrete-event model of W *truly concurrent* workers (virtual time,
// weight-proportional task durations with seeded jitter) over the real
// block DAG and the real affinity map. Real-execution steal counts depend
// on how many physical cores the host gives the workers - on an
// oversubscribed or single-core host the OS timeslices the pool and the
// counts measure preemption timing, not placement policy - so the
// simulated counts are the reproducible form of the steal-reduction
// comparison.
//
// `--json out.json` emits every counter per record (see BenchUtil.h).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cachesim/CacheSim.h"
#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"

using namespace shackle;
using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

/// SplitMix64 finalizer (same mix the scheduler's random-victim scan
/// uses), so simulated victim orders match the real scheduler's.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

struct SimOut {
  uint64_t Steals = 0;
  uint64_t LocalSteals = 0;
  uint64_t HomeHits = 0;
  uint64_t Tasks = 0;
  uint64_t Makespan = 0;
};

/// Discrete-event model of the scheduler's placement policy with W
/// workers that genuinely run in parallel (each advances through virtual
/// time independently; no host timeslicing). Mirrors the runtime's
/// routing rules: affinity seeds homes and mails released successors to
/// their home worker; round-robin scatters the first wavefront and keeps
/// successors with the finisher. The steal ladder is the runtime's
/// (own queue, own mailbox, same-domain deque ring, remote deques,
/// foreign mailboxes; or the seeded random full-ring scan), minus the
/// failed-scan hysteresis - an idle simulated worker retries exactly when
/// new work appears. Task durations are Weights[T] * 64 ticks plus a
/// deterministic ~12% jitter keyed on (Seed, T), modeling execution-time
/// variance; everything is a pure function of its arguments.
SimOut simulatePlacement(const BlockDepGraph &G,
                         const std::vector<uint64_t> &Weights,
                         const AffinityMap *AMap, unsigned W,
                         unsigned DomSize, bool RandomSteal, uint64_t Seed) {
  const std::size_t N = G.numBlocks();
  SimOut O;
  if (W == 0 || N == 0)
    return O;
  if (DomSize == 0 || DomSize > W)
    DomSize = W;
  std::vector<uint32_t> Deg(G.InDegree);
  std::vector<std::vector<uint32_t>> Q(W), MB(W);

  unsigned Next = 0;
  for (uint32_t T = 0; T < static_cast<uint32_t>(N); ++T)
    if (Deg[T] == 0) {
      if (AMap) {
        Q[AMap->Home[T]].push_back(T);
      } else {
        Q[Next].push_back(T);
        Next = (Next + 1) % W;
      }
    }

  auto domainOf = [DomSize](unsigned X) { return X / DomSize; };
  auto dur = [&](uint32_t T) {
    uint64_t B = (T < Weights.size() && Weights[T] > 0 ? Weights[T] : 1) * 64;
    return B + mix64(static_cast<uint64_t>(T) ^ Seed) % (B / 8 + 1);
  };
  auto countSteal = [&](unsigned Me, unsigned Victim) {
    ++O.Steals;
    if (domainOf(Victim) == domainOf(Me))
      ++O.LocalSteals;
  };
  // Steal the *oldest* entry, like a Chase-Lev thief taking the top end.
  auto stealFront = [](std::vector<uint32_t> &V, uint32_t &T) {
    T = V.front();
    V.erase(V.begin());
  };

  uint64_t Now = 0, StealNonce = 0;
  auto tryGet = [&](unsigned Me, uint32_t &T) {
    if (!Q[Me].empty()) {
      T = Q[Me].back();
      Q[Me].pop_back();
      return true;
    }
    if (AMap && !MB[Me].empty()) {
      T = MB[Me].back();
      MB[Me].pop_back();
      return true;
    }
    if (RandomSteal) {
      if (W > 1) {
        uint64_t R =
            mix64(Seed ^ (static_cast<uint64_t>(Me) << 32) ^ ++StealNonce);
        for (unsigned I = 0; I < W - 1; ++I) {
          unsigned V =
              (Me + 1 + static_cast<unsigned>((R + I) % (W - 1))) % W;
          if (!Q[V].empty()) {
            stealFront(Q[V], T);
            countSteal(Me, V);
            return true;
          }
          if (AMap && !MB[V].empty()) {
            stealFront(MB[V], T);
            countSteal(Me, V);
            return true;
          }
        }
      }
      return false;
    }
    unsigned DomBegin = domainOf(Me) * DomSize;
    unsigned DomCount = std::min(DomSize, W - DomBegin);
    for (unsigned I = 1; I < DomCount; ++I) {
      unsigned V = DomBegin + (Me - DomBegin + I) % DomCount;
      if (!Q[V].empty()) {
        stealFront(Q[V], T);
        countSteal(Me, V);
        return true;
      }
    }
    for (unsigned I = 1; I < W; ++I) {
      unsigned V = (Me + I) % W;
      if (V >= DomBegin && V < DomBegin + DomCount)
        continue;
      if (!Q[V].empty()) {
        stealFront(Q[V], T);
        countSteal(Me, V);
        return true;
      }
    }
    if (AMap)
      for (unsigned I = 1; I < W; ++I) {
        unsigned V = (Me + I) % W;
        if (!MB[V].empty()) {
          stealFront(MB[V], T);
          countSteal(Me, V);
          return true;
        }
      }
    return false;
  };

  std::vector<uint64_t> FinishAt(W, 0);
  std::vector<int64_t> Cur(W, -1);
  auto start = [&](unsigned Me) {
    uint32_t T;
    if (!tryGet(Me, T))
      return;
    Cur[Me] = T;
    FinishAt[Me] = Now + dur(T);
    if (AMap && AMap->Home[T] == Me)
      ++O.HomeHits;
    ++O.Tasks;
  };

  for (unsigned Me = 0; Me < W; ++Me)
    start(Me);
  while (true) {
    uint64_t Min = UINT64_MAX;
    for (unsigned Me = 0; Me < W; ++Me)
      if (Cur[Me] >= 0)
        Min = std::min(Min, FinishAt[Me]);
    if (Min == UINT64_MAX)
      break;
    Now = Min;
    for (unsigned Me = 0; Me < W; ++Me) {
      if (Cur[Me] < 0 || FinishAt[Me] != Now)
        continue;
      uint32_t T = static_cast<uint32_t>(Cur[Me]);
      Cur[Me] = -1;
      for (uint32_t S : G.Succs[T])
        if (--Deg[S] == 0) {
          if (AMap && AMap->Home[S] != Me)
            MB[AMap->Home[S]].push_back(S);
          else
            Q[Me].push_back(S);
        }
    }
    for (unsigned Me = 0; Me < W; ++Me)
      if (Cur[Me] < 0)
        start(Me);
  }
  O.Makespan = Now;
  return O;
}

/// Applies placement mode 0/1/2 (see the file comment) to \p Opts.
void applyMode(ParallelRunOptions &Opts, int64_t Mode, unsigned Threads) {
  switch (Mode) {
  case 0:
    Opts.Placement = TaskPlacement::Affinity;
    break;
  case 1:
    Opts.Placement = TaskPlacement::RoundRobin;
    break;
  default:
    Opts.Placement = TaskPlacement::RoundRobin;
    Opts.RandomSteal = true;
    Opts.StealSeed = 0x5ca1ab1e;
    break;
  }
  // Two domains at 4+ threads so the local/remote split is exercised even
  // on single-NUMA machines; below that a flat domain (the only sensible
  // shape for 1-2 workers).
  Opts.DomainSize = Threads >= 4 ? Threads / 2 : 0;
}

/// Args: {N, Outer, TaskLevel, Threads, Mode}; Inner = Outer/4 (>= 2).
void BM_LocalityExec(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Outer = St.range(1);
  unsigned Level = static_cast<unsigned>(St.range(2));
  unsigned Threads = static_cast<unsigned>(St.range(3));
  int64_t Mode = St.range(4);
  int64_t Inner = Outer >= 8 ? Outer / 4 : 2;

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions POpts;
  POpts.TaskLevel = Level;
  ParallelPlan Plan =
      ParallelPlan::build(P, mmmShackleTwoLevel(P, Outer, Inner), {N}, POpts);
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  ParallelRunOptions RunOpts;
  RunOpts.NumThreads = Threads;
  applyMode(RunOpts, Mode, Threads);

  ProgramInstance Init(P, {N});
  Init.fillRandom(41, 0.5, 1.5);
  ProgramInstance Inst = Init;
  // Steal counts per run are small and scheduling-noise-sensitive, so the
  // reported telemetry is the per-run mean over all timed iterations.
  uint64_t Runs = 0, Steals = 0, Local = 0, Home = 0, Blocks = 0, Migr = 0;
  for (auto _ : St) {
    St.PauseTiming();
    for (unsigned A = 0; A < P.getNumArrays(); ++A)
      Inst.buffer(A) = Init.buffer(A);
    St.ResumeTiming();
    ParallelRunStats R = Plan.run(Inst, RunOpts);
    benchmark::ClobberMemory();
    ++Runs;
    Steals += R.Steals;
    Local += R.LocalSteals;
    Home += R.HomeHits;
    Blocks += R.BlocksRun;
    Migr += R.BytesMigrated;
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      mmmFlops(N) * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
  setBenchMeta(St, N, Outer, Threads);
  setDagStats(St, static_cast<double>(Plan.graph().numBlocks()),
              static_cast<double>(Plan.graph().NumEdges), Plan.dagBuildMs());
  double Rd = Runs == 0 ? 1.0 : static_cast<double>(Runs);
  double HomePct =
      Blocks == 0 ? 0.0
                  : 100.0 * static_cast<double>(Home) /
                        static_cast<double>(Blocks);
  setLocalityStats(St, static_cast<double>(Steals) / Rd,
                   static_cast<double>(Local) / Rd, HomePct,
                   static_cast<double>(Migr) / Rd);
}

/// Args: {N, Outer, Threads, Mode}: per-worker cache simulation of the
/// hierarchical (outer-task) plan. Each worker's trace feeds a private
/// L1/L2 hierarchy; the reported misses are summed over workers, so tasks
/// that wander off their home worker show up as extra cold misses.
void BM_LocalityCacheMiss(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Outer = St.range(1);
  unsigned Threads = static_cast<unsigned>(St.range(2));
  int64_t Mode = St.range(3);
  int64_t Inner = Outer >= 8 ? Outer / 4 : 2;

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions POpts;
  POpts.TaskLevel = 2;
  ParallelPlan Plan =
      ParallelPlan::build(P, mmmShackleTwoLevel(P, Outer, Inner), {N}, POpts);
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  auto Address = [](unsigned ArrayId, int64_t Off) {
    return (static_cast<uint64_t>(ArrayId + 1) << 33) +
           static_cast<uint64_t>(Off) * sizeof(double);
  };
  std::vector<CacheConfig> Configs = {{"L1", 32 * 1024, 64, 4},
                                      {"L2", 256 * 1024, 64, 8}};
  std::vector<CacheHierarchy> Caches(Threads, CacheHierarchy(Configs));
  std::vector<TraceFn> Sinks;
  for (unsigned W = 0; W < Threads; ++W)
    Sinks.push_back([&Caches, &Address, W](unsigned ArrayId, int64_t Off,
                                           bool) {
      Caches[W].access(Address(ArrayId, Off));
    });

  ParallelRunOptions RunOpts;
  RunOpts.NumThreads = Threads;
  RunOpts.WorkerTraces = &Sinks;
  applyMode(RunOpts, Mode, Threads);

  ProgramInstance Init(P, {N});
  Init.fillRandom(43, 0.5, 1.5);
  ProgramInstance Inst = Init;
  ParallelRunStats Last;
  for (auto _ : St) {
    St.PauseTiming();
    for (unsigned A = 0; A < P.getNumArrays(); ++A)
      Inst.buffer(A) = Init.buffer(A);
    for (CacheHierarchy &C : Caches)
      C.resetCounters();
    St.ResumeTiming();
    Last = Plan.run(Inst, RunOpts);
    benchmark::ClobberMemory();
  }
  uint64_t L1 = 0, L2 = 0;
  for (const CacheHierarchy &C : Caches) {
    L1 += C.level(0).misses();
    L2 += C.level(1).misses();
  }
  setBenchMeta(St, N, Outer, Threads);
  double HomePct = Last.BlocksRun == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(Last.HomeHits) /
                             static_cast<double>(Last.BlocksRun);
  setLocalityStats(St, static_cast<double>(Last.Steals),
                   static_cast<double>(Last.LocalSteals), HomePct,
                   static_cast<double>(Last.BytesMigrated));
  setWorkerMissStats(St, static_cast<double>(L1), static_cast<double>(L2));
}

/// Args: {N, Outer, TaskLevel, Workers, Mode}. Same modes as
/// BM_LocalityExec, but the schedule runs through simulatePlacement, so
/// the reported steals / local_steals / home_hit_pct are deterministic
/// and model W genuinely concurrent workers whatever the host's core
/// count. The makespan counter (virtual ticks) shows the placement does
/// not cost parallelism.
void BM_LocalitySim(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Outer = St.range(1);
  unsigned Level = static_cast<unsigned>(St.range(2));
  unsigned Workers = static_cast<unsigned>(St.range(3));
  int64_t Mode = St.range(4);
  int64_t Inner = Outer >= 8 ? Outer / 4 : 2;

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlanOptions POpts;
  POpts.TaskLevel = Level;
  ParallelPlan Plan =
      ParallelPlan::build(P, mmmShackleTwoLevel(P, Outer, Inner), {N}, POpts);
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  std::vector<uint64_t> Weights;
  for (const BlockTask &T : Plan.partition().Tasks)
    Weights.push_back(T.Segments.empty() ? 1 : T.Segments.size());
  AffinityMap AMap = Plan.affinityMap(Workers);
  unsigned DomSize = Workers >= 4 ? Workers / 2 : Workers;

  SimOut Out;
  for (auto _ : St) {
    Out = simulatePlacement(Plan.graph(), Weights,
                            Mode == 0 ? &AMap : nullptr, Workers, DomSize,
                            /*RandomSteal=*/Mode == 2, /*Seed=*/0x10ca11f7);
    benchmark::DoNotOptimize(Out.Steals);
  }
  setBenchMeta(St, N, Outer, Workers);
  setDagStats(St, static_cast<double>(Plan.graph().numBlocks()),
              static_cast<double>(Plan.graph().NumEdges), Plan.dagBuildMs());
  double HomePct = Out.Tasks == 0 ? 0.0
                                  : 100.0 * static_cast<double>(Out.HomeHits) /
                                        static_cast<double>(Out.Tasks);
  setLocalityStats(St, static_cast<double>(Out.Steals),
                   static_cast<double>(Out.LocalSteals), HomePct, 0.0);
  St.counters["makespan_ticks"] = static_cast<double>(Out.Makespan);
}

void ExecSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Threads : {1, 2, 4, 8})
    for (int64_t Level : {0, 2})
      for (int64_t Mode : {0, 1, 2})
        B->Args({64, 16, Level, Threads, Mode});
  // Wider outer grid (8x8 blocks, longer k chains): more release traffic,
  // so the placement policies separate more clearly.
  for (int64_t Threads : {4, 8})
    for (int64_t Mode : {0, 1, 2})
      B->Args({64, 8, 2, Threads, Mode});
  // Non-dividing N: the outer grid has ragged boundary blocks, so task
  // weights are heterogeneous (up to 8x between interior and corner
  // blocks). This is where weight-balanced affinity placement earns its
  // keep: weight-oblivious round-robin seeding turns the imbalance into
  // steals.
  for (int64_t Threads : {4, 8})
    for (int64_t Mode : {0, 1, 2})
      B->Args({72, 16, 2, Threads, Mode});
}

void CacheSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Threads : {1, 2, 4})
    for (int64_t Mode : {0, 1, 2})
      B->Args({32, 8, Threads, Mode});
}

} // namespace

BENCHMARK(BM_LocalityExec)
    ->Apply(ExecSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_LocalityCacheMiss)
    ->Apply(CacheSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_LocalitySim)
    ->Apply(ExecSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond);

SHACKLE_BENCH_MAIN()
