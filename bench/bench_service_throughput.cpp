//===- bench_service_throughput.cpp - Plan-cache service throughput -----------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: measures the `shackle serve` plan-cache service
// (DESIGN.md §13). Three views:
//
//   * ColdCompile — full pipeline latency on a cache miss (legality through
//     DAG construction), the cost a warm hit amortizes away.
//   * WarmHit — latency of a cached `compile` and a cached `run`, which skip
//     Omega, simplification, partitioning, and DAG construction entirely.
//   * Throughput — requests/second through the Unix-socket daemon at 1, 4,
//     and 8 concurrent clients against a warm cache.
//
// Every record lands in the BenchUtil JSON sink (--json out.json) with the
// service counters attached (hits, misses, coalesced, solver_saved,
// req_per_s), so cold-vs-warm ratios and client scaling diff directly from
// sweep output.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "service/Service.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace shackle;
using namespace shackle_bench;

namespace {

constexpr int64_t MatN = 96;
constexpr int64_t MatBlock = 16;

std::string compileRequest(int64_t N) {
  return "{\"op\":\"compile\",\"benchmark\":\"matmul\",\"config\":\"c\","
         "\"block\":" +
         std::to_string(MatBlock) + ",\"params\":[" + std::to_string(N) +
         "]}";
}

std::string runRequest(int64_t N) {
  return "{\"op\":\"run\",\"benchmark\":\"matmul\",\"config\":\"c\","
         "\"block\":" +
         std::to_string(MatBlock) + ",\"params\":[" + std::to_string(N) +
         "],\"threads\":1}";
}

std::string uniqueSocket() {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/shackle_bench_" + std::to_string(getpid()) + "_" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

void attachStats(benchmark::State &St, const ServiceCore &Core,
                 double ReqPerS) {
  ServiceStats S = Core.stats();
  setServiceStats(St, static_cast<double>(S.Cache.Hits),
                  static_cast<double>(S.Cache.Misses),
                  static_cast<double>(S.Cache.Coalesced),
                  static_cast<double>(S.SolverCallsSaved), ReqPerS);
}

/// Full cold-compile latency: a fresh core every iteration, so every
/// request walks legality, simplification, partitioning, and the DAG.
void BM_ServiceColdCompile(benchmark::State &St) {
  const std::string Req = compileRequest(MatN);
  uint64_t Misses = 0;
  for (auto _ : St) {
    ServiceCore Core;
    std::string Reply = Core.handleLine(Req);
    benchmark::DoNotOptimize(Reply.data());
    Misses += Core.stats().Cache.Misses;
  }
  setBenchMeta(St, MatN, MatBlock, 1);
  setServiceStats(St, 0, static_cast<double>(Misses), 0, 0, 0);
}
BENCHMARK(BM_ServiceColdCompile)->Unit(benchmark::kMillisecond);

/// Warm `compile`: pure cache-hit latency (key construction + lookup).
void BM_ServiceWarmCompile(benchmark::State &St) {
  ServiceCore Core;
  const std::string Req = compileRequest(MatN);
  Core.handleLine(Req); // warm the cache
  for (auto _ : St) {
    std::string Reply = Core.handleLine(Req);
    benchmark::DoNotOptimize(Reply.data());
  }
  setBenchMeta(St, MatN, MatBlock, 1);
  attachStats(St, Core, 0);
}
BENCHMARK(BM_ServiceWarmCompile)->Unit(benchmark::kMicrosecond);

/// Warm `run`: cache hit plus execution — the steady-state request cost a
/// long-lived daemon pays.
void BM_ServiceWarmRun(benchmark::State &St) {
  ServiceCore Core;
  const std::string Req = runRequest(MatN);
  Core.handleLine(Req); // warm the cache
  for (auto _ : St) {
    std::string Reply = Core.handleLine(Req);
    benchmark::DoNotOptimize(Reply.data());
  }
  setBenchMeta(St, MatN, MatBlock, 1);
  attachStats(St, Core, 0);
}
BENCHMARK(BM_ServiceWarmRun)->Unit(benchmark::kMillisecond);

/// End-to-end daemon throughput: N concurrent clients firing warm `compile`
/// requests through the Unix socket. Measures the transport plus the
/// reader-mostly cache under contention.
void BM_ServiceThroughput(benchmark::State &St) {
  const unsigned Clients = static_cast<unsigned>(St.range(0));
  constexpr unsigned ReqsPerClient = 16;

  ServiceCore Core;
  std::string Sock = uniqueSocket();
  ServiceServer Server(Core, Sock);
  if (!Server.start().ok()) {
    St.SkipWithError("cannot bind benchmark socket");
    return;
  }
  std::thread ServerThread([&] { Server.serve(); });
  // Warm the cache through the socket so the timed section is all hits.
  {
    std::string Reply, Err;
    if (!serviceRequest(Sock, compileRequest(MatN), Reply, &Err)) {
      St.SkipWithError("warmup request failed");
      Server.stop();
      ServerThread.join();
      return;
    }
  }

  const std::string Req = compileRequest(MatN);
  uint64_t TotalReqs = 0;
  for (auto _ : St) {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&] {
        for (unsigned R = 0; R < ReqsPerClient; ++R) {
          std::string Reply, Err;
          if (!serviceRequest(Sock, Req, Reply, &Err))
            break;
          benchmark::DoNotOptimize(Reply.data());
        }
      });
    for (std::thread &T : Threads)
      T.join();
    TotalReqs += Clients * ReqsPerClient;
  }

  Server.stop();
  ServerThread.join();

  St.SetItemsProcessed(static_cast<int64_t>(TotalReqs));
  setBenchMeta(St, MatN, MatBlock, Clients);
  attachStats(St, Core, 0);
  // A rate counter: reported as (Clients * ReqsPerClient) * iterations /
  // elapsed seconds — requests per second — in both the console and the
  // JSON record.
  St.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(Clients) * ReqsPerClient,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

SHACKLE_BENCH_MAIN();
