//===- bench_fig13_adi.cpp - Paper Figure 13(ii) ------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 13(ii): the ADI kernel. Shackling B with 1x1 blocks walked in
// storage order performs loop fusion + interchange (Figure 14), giving
// unit-stride innermost accesses. The paper reports the transformed code
// running 8.9x faster than the input at n = 1000 on the SP-2. Lines:
//   "Input code"       -> adi_orig
//   "Transformed code" -> adi_fused (what the shackle generates)
//   hand-written references for both, as a sanity envelope.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

using namespace shackle_bench;

namespace {

double adiFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 6.0 * (Nd - 1.0) * Nd;
}

Workspace makeADIWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 5, 1.0, 2.0); // B (kept away from zero: divisor)
  WS.addArray(N * N, 6);           // X
  WS.addArray(N * N, 7);           // A
  WS.setParams({N});
  return WS;
}

void BM_InputCode(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeADIWorkspace(N);
  runGenKernel(St, "adi_orig", WS, adiFlops(N));
}

void BM_ShackledFused(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeADIWorkspace(N);
  runGenKernel(St, "adi_fused", WS, adiFlops(N));
}

void BM_HandInput(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeADIWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) {
        shackle::adiOriginal(W.work(0).data(), W.work(1).data(),
                             W.work(2).data(), N);
      },
      WS, adiFlops(N));
}

void BM_HandFused(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeADIWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) {
        shackle::adiFusedInterchanged(W.work(0).data(), W.work(1).data(),
                                      W.work(2).data(), N);
      },
      WS, adiFlops(N));
}

} // namespace

BENCHMARK(BM_InputCode)->RangeMultiplier(2)->Range(250, 2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackledFused)->RangeMultiplier(2)->Range(250, 2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HandInput)->RangeMultiplier(2)->Range(250, 2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HandFused)->RangeMultiplier(2)->Range(250, 2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
