//===- bench_mmm.cpp - Matrix multiply: Figures 3/6 + block-size ablation ----//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Matrix multiplication through the paper's Section 4/6 progression:
//   input I-J-K code                  -> mmm_orig
//   single shackle on C (Figure 6,
//     partially blocked: K unbounded) -> mmm_shackle_c_64
//   product shackle C x A (Figure 3,
//     fully blocked)                  -> mmm_shackle_cxa_64
//   hand-blocked + micro BLAS         -> blockedMatMul
// plus the block-size ablation the paper leaves open (Section 8): the fully
// blocked kernel at B in {16, 32, 64, 128} at fixed N.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

#include <string>

using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

Workspace makeMMMWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 41); // C
  WS.addArray(N * N, 42); // A
  WS.addArray(N * N, 43); // B
  WS.setParams({N});
  return WS;
}

void BM_Input(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_orig", WS, mmmFlops(N));
  setBenchMeta(St, N, 0);
}

void BM_ShackleC(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_shackle_c_64", WS, mmmFlops(N));
  setBenchMeta(St, N, 64);
}

void BM_ShackleCxA(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_shackle_cxa_64", WS, mmmFlops(N));
  setBenchMeta(St, N, 64);
}

void BM_HandBlocked(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) {
        shackle::blockedMatMul(W.work(0).data(), W.work(1).data(),
                               W.work(2).data(), N, 64);
      },
      WS, mmmFlops(N));
  setBenchMeta(St, N, 64);
}

// Block-size ablation at fixed N = 512.
void BM_BlockSizeSweep(benchmark::State &St) {
  int64_t B = St.range(0);
  int64_t N = 512;
  Workspace WS = makeMMMWorkspace(N);
  std::string Name = "mmm_shackle_cxa_" + std::to_string(B);
  runGenKernel(St, Name.c_str(), WS, mmmFlops(N));
  setBenchMeta(St, N, B);
}

} // namespace

BENCHMARK(BM_Input)->DenseRange(100, 600, 100)->Arg(1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackleC)->DenseRange(100, 600, 100)->Arg(1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackleCxA)->DenseRange(100, 600, 100)->Arg(1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HandBlocked)->DenseRange(100, 600, 100)->Arg(1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockSizeSweep)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->MinTime(0.05)->Unit(benchmark::kMillisecond);

SHACKLE_BENCH_MAIN()
