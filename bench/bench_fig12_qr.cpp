//===- bench_fig12_qr.cpp - Paper Figure 12 ----------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 12: QR factorization (Householder) MFlops vs N. Lines:
//   "Input code"              -> qr_orig
//   "Compiler generated code" -> qr_cols_32 (column shackle; dependences
//                                prevent full 2-D blocking, paper Section 7)
//   "LAPACK"                  -> blockedQRWY (compact-WY, exploits the
//                                associativity of reflections the compiler
//                                cannot use)
//
// Expected shape: blocking the columns improves on the input code; the WY
// baseline wins at large N because it turns updates into matrix multiplies,
// while the compiler-generated pointwise code can beat it at small N — in
// the paper, below about 200x200.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

using namespace shackle_bench;

namespace {

double qrFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 4.0 * Nd * Nd * Nd / 3.0;
}

Workspace makeQRWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 77);         // A
  for (int64_t Aux = 0; Aux < 5; ++Aux)
    WS.addArray(N, 78 + Aux);     // sig, alpha, beta, w, rdiag
  WS.setParams({N});
  return WS;
}

void BM_InputCode(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeQRWorkspace(N);
  runGenKernel(St, "qr_orig", WS, qrFlops(N));
}

void BM_ColumnShackle16(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeQRWorkspace(N);
  runGenKernel(St, "qr_cols_16", WS, qrFlops(N));
}

void BM_ColumnShackle32(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeQRWorkspace(N);
  runGenKernel(St, "qr_cols_32", WS, qrFlops(N));
}

void BM_LapackWY(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeQRWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) {
        shackle::blockedQRWY(W.work(0).data(), W.work(5).data(), N, 32);
      },
      WS, qrFlops(N));
}

} // namespace

BENCHMARK(BM_InputCode)->DenseRange(100, 600, 100)->Arg(1000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnShackle16)->DenseRange(100, 600, 100)->Arg(1000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnShackle32)->DenseRange(100, 600, 100)->Arg(1000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LapackWY)->DenseRange(100, 600, 100)->Arg(1000)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
