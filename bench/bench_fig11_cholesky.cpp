//===- bench_fig11_cholesky.cpp - Paper Figure 11 ----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 11: Cholesky factorization MFlops vs matrix order N on a memory
// hierarchy. Lines reproduced (paper name -> ours):
//   "Input right-looking code"      -> chol_orig (dsc-gen compiled)
//   "Compiler generated code"       -> chol_stores_64 (one data shackle)
//   (product / multi-level ablation)-> chol_product_wr_64, chol_two_level_64_8
//   "Matrix Multiply replaced by DGEMM" / "LAPACK with native BLAS"
//                                   -> blockedCholeskyLAPACK on the micro BLAS
//
// Expected shape: the input code is flat and slow; every shackled variant is
// a large constant factor faster and scales with N; the hand-blocked
// LAPACK-style code bounds the compiler-generated code from above.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

using namespace shackle_bench;

namespace {

double cholFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return Nd * Nd * Nd / 3.0;
}

Workspace makeCholWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 1234);
  boostDiagonal(WS.init(0), N, 3.0 * static_cast<double>(N));
  WS.setParams({N});
  return WS;
}

void BM_InputRightLooking(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeCholWorkspace(N);
  runGenKernel(St, "chol_orig", WS, cholFlops(N));
}

void BM_ShackledOneLevel(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeCholWorkspace(N);
  runGenKernel(St, "chol_stores_64", WS, cholFlops(N));
}

void BM_ShackledProduct(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeCholWorkspace(N);
  runGenKernel(St, "chol_product_wr_64", WS, cholFlops(N));
}

void BM_ShackledTwoLevel(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeCholWorkspace(N);
  runGenKernel(St, "chol_two_level_64_8", WS, cholFlops(N));
}

void BM_LapackStyle(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeCholWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) {
        shackle::blockedCholeskyLAPACK(W.work(0).data(), N, 64);
      },
      WS, cholFlops(N));
}

} // namespace

BENCHMARK(BM_InputRightLooking)->DenseRange(100, 600, 100)->Arg(1200)->Arg(2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackledOneLevel)->DenseRange(100, 600, 100)->Arg(1200)->Arg(2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackledProduct)->DenseRange(100, 600, 100)->Arg(1200)->Arg(2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShackledTwoLevel)->DenseRange(100, 600, 100)->Arg(1200)->Arg(2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LapackStyle)->DenseRange(100, 600, 100)->Arg(1200)->Arg(2000)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
