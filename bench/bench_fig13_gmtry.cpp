//===- bench_fig13_gmtry.cpp - Paper Figure 13(i) -----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 13(i): the GMTRY kernel (SPEC Dnasa7) — Gaussian elimination
// without pivoting. Shackling A in both dimensions (through the stores,
// like Cholesky) blocks the elimination; the paper reports the elimination
// speeding up by about 3x on the SP-2. Lines:
//   "Input code"       -> gmtry_orig
//   "Transformed code" -> gmtry_stores_64
//   hand-written elimination as a sanity envelope.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

using namespace shackle_bench;

namespace {

double gaussFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd / 3.0;
}

Workspace makeGmtryWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 21);
  boostDiagonal(WS.init(0), N, 3.0 * static_cast<double>(N));
  WS.setParams({N});
  return WS;
}

void BM_InputCode(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeGmtryWorkspace(N);
  runGenKernel(St, "gmtry_orig", WS, gaussFlops(N));
}

void BM_Shackled(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeGmtryWorkspace(N);
  runGenKernel(St, "gmtry_stores_64", WS, gaussFlops(N));
}

void BM_HandGauss(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeGmtryWorkspace(N);
  runHandKernel(
      St,
      [N](Workspace &W) { shackle::gaussNaive(W.work(0).data(), N); }, WS,
      gaussFlops(N));
}

} // namespace

BENCHMARK(BM_InputCode)->DenseRange(100, 600, 100)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Shackled)->DenseRange(100, 600, 100)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HandGauss)->DenseRange(100, 600, 100)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
