//===- bench_parallel_cholesky.cpp - Parallel block execution: Cholesky --------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Parallel speedup on a kernel with a real dependence structure:
// right-looking Cholesky shackled through its stores. Unlike MMM-on-C, the
// block dependence DAG is dense near the diagonal (each diagonal block
// gates its column, each update gates the trailing matrix), so speedup is
// bounded by the critical path through the diagonal - the classic DAG-
// scheduled factorization profile. The plan (legality, DAG, partition) is
// built outside the timed region. `--json out.json` records
// {name, n, block, threads, ns_per_iter}.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"
#include "support/FaultInjector.h"

using namespace shackle;
using namespace shackle_bench;

namespace {

double cholFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return Nd * Nd * Nd / 3.0;
}

void BM_ParallelCholesky(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Block = St.range(1);
  unsigned Threads = static_cast<unsigned>(St.range(2));

  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      ParallelPlan::build(P, choleskyShackleStores(P, Block), {N});
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  ProgramInstance Init(P, {N});
  Init.fillRandom(7, 0.5, 1.5);
  // Diagonally dominant input keeps the factorization numerically tame.
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Init.buffer(0)[Init.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  ProgramInstance Inst = Init;
  uint64_t Retries = 0, Degraded = 0;
  for (auto _ : St) {
    St.PauseTiming();
    Inst.buffer(0) = Init.buffer(0);
    St.ResumeTiming();
    ParallelRunStats Stats = Plan.run(Inst, Threads);
    benchmark::ClobberMemory();
    Retries += Stats.Retries;
    Degraded += Stats.Mode == ParallelMode::Degraded;
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      cholFlops(N) * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
  St.counters["critical-path"] = benchmark::Counter(
      static_cast<double>(Plan.graph().criticalPathLength()));
  setBenchMeta(St, N, Block, Threads);
  setDagStats(St, static_cast<double>(Plan.graph().numBlocks()),
              static_cast<double>(Plan.graph().NumEdges), Plan.dagBuildMs());
  setFaultStats(
      St, static_cast<double>(FaultInjector::instance().counters().total()),
      static_cast<double>(Retries), static_cast<double>(Degraded));
}

void ThreadSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Threads : {1, 2, 4, 8}) {
    B->Args({64, 8, Threads});
    B->Args({128, 16, Threads});
    B->Args({256, 32, Threads});
  }
}

} // namespace

BENCHMARK(BM_ParallelCholesky)
    ->Apply(ThreadSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

SHACKLE_BENCH_MAIN()
