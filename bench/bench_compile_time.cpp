//===- bench_compile_time.cpp - Compiler cost table -----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: measures the *compiler's* own cost — exact legality
// checking (one integer-programming problem per dependence per block
// coordinate) and polyhedral code generation — for each benchmark
// configuration. Documents that the data-centric pipeline runs in tens of
// milliseconds even for products on imperfect nests, i.e. entirely
// practical as a compilation step.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "programs/Benchmarks.h"

#include <benchmark/benchmark.h>

using namespace shackle;

namespace {

template <typename MakeFn, typename ChainFn>
void runCompile(benchmark::State &St, MakeFn Make, ChainFn MakeChain,
                bool Generate) {
  BenchSpec Spec = Make();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = MakeChain(P);
  for (auto _ : St) {
    if (Generate) {
      LoopNest Nest = generateShackledCode(P, Chain);
      benchmark::DoNotOptimize(Nest.countInstances());
    } else {
      LegalityResult R = checkLegality(P, Chain);
      benchmark::DoNotOptimize(R.Legal);
    }
  }
}

#define COMPILE_BENCH(NAME, MAKE, CHAIN)                                      \
  void BM_Legality_##NAME(benchmark::State &St) {                             \
    runCompile(St, MAKE, [](const Program &P) { return CHAIN; }, false);      \
  }                                                                           \
  void BM_Codegen_##NAME(benchmark::State &St) {                              \
    runCompile(St, MAKE, [](const Program &P) { return CHAIN; }, true);       \
  }                                                                           \
  BENCHMARK(BM_Legality_##NAME)->Unit(benchmark::kMillisecond);               \
  BENCHMARK(BM_Codegen_##NAME)->Unit(benchmark::kMillisecond)

COMPILE_BENCH(MatMulC, makeMatMul, mmmShackleC(P, 64));
COMPILE_BENCH(MatMulCxA, makeMatMul, mmmShackleCxA(P, 64));
COMPILE_BENCH(MatMulTwoLevel, makeMatMul, mmmShackleTwoLevel(P, 64, 8));
COMPILE_BENCH(CholStores, makeCholeskyRight, choleskyShackleStores(P, 64));
COMPILE_BENCH(CholProduct, makeCholeskyRight,
              choleskyShackleProduct(P, 64, true));
COMPILE_BENCH(QRCols, makeQRHouseholder, qrColumnShackle(P, 32));
COMPILE_BENCH(ADI, makeADI, adiShackle(P));
COMPILE_BENCH(Gmtry, makeGmtry, gmtryShackleStores(P, 64));
COMPILE_BENCH(Banded, makeCholeskyBanded, choleskyShackleStores(P, 32));

} // namespace

BENCHMARK_MAIN();
