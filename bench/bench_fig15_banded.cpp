//===- bench_fig15_banded.cpp - Paper Figure 15 --------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 15: banded Cholesky factorization, MFlops as a function of the
// bandwidth at fixed N. The shackled code is regular Cholesky restricted to
// the band, with the array in LAPACK band storage (a physical data
// transformation composed with the logical blocking, paper Section 7).
// Lines:
//   "Input (band) code"      -> band_orig
//   "Compiler generated"     -> band_stores_32
//   "LAPACK (DPBTRF-style)"  -> bandCholeskyBlocked (BLAS-3 on staged panels)
//   pointwise band Cholesky  -> bandCholeskyNaive (envelope)
//
// Expected shape: the compiler-generated code wins at small bandwidths; the
// DPBTRF-style code takes over as the band widens and BLAS-3 kicks in.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "kernels/Baselines.h"

using namespace shackle_bench;

namespace {

constexpr int64_t MatrixOrder = 1500;

double bandFlops(int64_t N, int64_t BW) {
  double Nd = static_cast<double>(N), Bd = static_cast<double>(BW);
  return Nd * (Bd * Bd + 3.0 * Bd + 1.0);
}

Workspace makeBandWorkspace(int64_t N, int64_t BW) {
  Workspace WS;
  WS.addArray((BW + 1) * N, 31);
  boostBandDiagonal(WS.init(0), N, BW, 3.0 * static_cast<double>(BW + 1));
  WS.setParams({N, BW});
  return WS;
}

void BM_InputBandCode(benchmark::State &St) {
  int64_t BW = St.range(0);
  Workspace WS = makeBandWorkspace(MatrixOrder, BW);
  runGenKernel(St, "band_orig", WS, bandFlops(MatrixOrder, BW));
}

void BM_Shackled(benchmark::State &St) {
  int64_t BW = St.range(0);
  Workspace WS = makeBandWorkspace(MatrixOrder, BW);
  runGenKernel(St, "band_stores_32", WS, bandFlops(MatrixOrder, BW));
}

void BM_LapackDPBTRF(benchmark::State &St) {
  int64_t BW = St.range(0);
  Workspace WS = makeBandWorkspace(MatrixOrder, BW);
  runHandKernel(
      St,
      [BW](Workspace &W) {
        shackle::bandCholeskyBlocked(W.work(0).data(), MatrixOrder, BW, 32);
      },
      WS, bandFlops(MatrixOrder, BW));
}

void BM_PointwiseBand(benchmark::State &St) {
  int64_t BW = St.range(0);
  Workspace WS = makeBandWorkspace(MatrixOrder, BW);
  runHandKernel(
      St,
      [BW](Workspace &W) {
        shackle::bandCholeskyNaive(W.work(0).data(), MatrixOrder, BW);
      },
      WS, bandFlops(MatrixOrder, BW));
}

} // namespace

BENCHMARK(BM_InputBandCode)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Shackled)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LapackDPBTRF)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointwiseBand)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
