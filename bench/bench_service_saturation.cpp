//===- bench_service_saturation.cpp - Goodput vs offered load -----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: measures the admission-controlled serving layer
// (DESIGN.md §14) as offered load sweeps past capacity. Each point runs N
// client threads hammering warm-cache `run` requests through the
// AdmissionController (MaxInflight=2, QueueDepth=2, 100ms deadline) and
// reports:
//
//   * goodput_req_s     — ok replies per second. The claim under test: this
//     stays flat past the saturation knee instead of collapsing, because
//     excess load is shed in microseconds rather than queued into timeouts.
//   * shed              — requests refused with a structured `overloaded`.
//   * deadline_expired  — admitted requests whose queue wait blew the 100ms
//     deadline.
//   * accepted_p95_us   — p95 latency over *accepted* requests only (shed
//     replies return instantly and would flatter the tail).
//
// Every record lands in the BenchUtil JSON sink (--json out.json), so the
// goodput-vs-offered-load curve diffs directly from sweep output.
//
//===----------------------------------------------------------------------===//

#include "service/Admission.h"
#include "service/Json.h"
#include "service/Service.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace shackle;
using namespace shackle_bench;

namespace {

// Small enough that a warm run (cache hit + interpreted execution) costs a
// few milliseconds — the capacity of the 2-worker pool is then a few
// hundred req/s, and 8–16 offered clients genuinely saturate it.
constexpr int64_t MatN = 32;
constexpr int64_t MatBlock = 16;

std::string runRequest() {
  return "{\"op\":\"run\",\"benchmark\":\"matmul\",\"config\":\"c\","
         "\"block\":" +
         std::to_string(MatBlock) + ",\"params\":[" + std::to_string(MatN) +
         "],\"threads\":1}";
}

/// Offered-load sweep: St.range(0) client threads, each firing back-to-back
/// requests against a 2-worker pool. 1–2 threads is under capacity; 4–16 is
/// 2–8x over it.
void BM_ServiceSaturation(benchmark::State &St) {
  const unsigned Offered = static_cast<unsigned>(St.range(0));
  constexpr unsigned ReqsPerClient = 16;

  ServiceCore Core;
  const std::string Req = runRequest();
  Core.handleLine(Req); // Warm the plan cache: steady-state serving.

  AdmissionOptions AOpts;
  AOpts.MaxInflight = 2;
  AOpts.QueueDepth = 2;
  AOpts.RequestDeadlineMs = 100;
  AdmissionController Admission(Core, AOpts);

  std::mutex ResultsM;
  std::vector<double> AcceptedUs;
  uint64_t Ok = 0;
  double ElapsedS = 0.0;

  for (auto _ : St) {
    auto WindowStart = std::chrono::steady_clock::now();
    std::vector<std::thread> Clients;
    for (unsigned C = 0; C < Offered; ++C)
      Clients.emplace_back([&] {
        std::vector<double> MyUs;
        uint64_t MyOk = 0;
        for (unsigned R = 0; R < ReqsPerClient; ++R) {
          auto T0 = std::chrono::steady_clock::now();
          std::string Reply = Admission.process(Req);
          double Us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
          benchmark::DoNotOptimize(Reply.data());
          JsonValue V;
          std::string Err;
          if (parseJson(Reply, V, &Err) && V.getBool("ok", false)) {
            ++MyOk;
            MyUs.push_back(Us);
          }
        }
        std::lock_guard<std::mutex> Lock(ResultsM);
        Ok += MyOk;
        AcceptedUs.insert(AcceptedUs.end(), MyUs.begin(), MyUs.end());
      });
    for (std::thread &T : Clients)
      T.join();
    ElapsedS += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - WindowStart)
                    .count();
  }

  double P95 = 0.0;
  if (!AcceptedUs.empty()) {
    std::sort(AcceptedUs.begin(), AcceptedUs.end());
    size_t Idx = std::min(AcceptedUs.size() - 1, (AcceptedUs.size() * 95) / 100);
    P95 = AcceptedUs[Idx];
  }
  AdmissionStats AS = Admission.stats();
  St.SetItemsProcessed(static_cast<int64_t>(Ok));
  setBenchMeta(St, MatN, MatBlock, Offered);
  setSaturationStats(St, static_cast<double>(AS.Shed),
                     static_cast<double>(AS.DeadlineExpired), P95,
                     ElapsedS > 0 ? static_cast<double>(Ok) / ElapsedS : 0);
}
BENCHMARK(BM_ServiceSaturation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

SHACKLE_BENCH_MAIN();
