//===- bench_parallel_mmm.cpp - Parallel block execution: MMM ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Speedup of the parallel block-execution runtime over serial shackled
// execution on matrix multiplication blocked on C: the block dependence DAG
// of the C shackle has no edges (every dependence is a reduction within one
// C block), so all (N/B)^2 blocks are independent and the work-stealing
// scheduler can use every thread. The ParallelPlan (legality check, DAG,
// partition) is built once outside the timed region; the timed region is
// pure block execution through the interpreter. Sweeps threads in
// {1, 2, 4, 8} at several sizes, including the 8x8-blocked 512x512 case.
// `--json out.json` records {name, n, block, threads, ns_per_iter} for
// speedup post-processing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"
#include "support/FaultInjector.h"

using namespace shackle;
using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

void BM_ParallelMMM(benchmark::State &St) {
  int64_t N = St.range(0);
  int64_t Block = St.range(1);
  unsigned Threads = static_cast<unsigned>(St.range(2));

  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmShackleC(P, Block), {N});
  if (!Plan.parallelReady()) {
    St.SkipWithError("plan not parallel-ready");
    return;
  }

  ProgramInstance Init(P, {N});
  Init.fillRandom(41, 0.5, 1.5);
  ProgramInstance Inst = Init;
  uint64_t Retries = 0, Degraded = 0;
  for (auto _ : St) {
    St.PauseTiming();
    for (unsigned A = 0; A < P.getNumArrays(); ++A)
      Inst.buffer(A) = Init.buffer(A);
    St.ResumeTiming();
    ParallelRunStats Stats = Plan.run(Inst, Threads);
    benchmark::ClobberMemory();
    Retries += Stats.Retries;
    Degraded += Stats.Mode == ParallelMode::Degraded;
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      mmmFlops(N) * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
  setBenchMeta(St, N, Block, Threads);
  setDagStats(St, static_cast<double>(Plan.graph().numBlocks()),
              static_cast<double>(Plan.graph().NumEdges), Plan.dagBuildMs());
  setFaultStats(
      St, static_cast<double>(FaultInjector::instance().counters().total()),
      static_cast<double>(Retries), static_cast<double>(Degraded));
}

void ThreadSweep(benchmark::internal::Benchmark *B) {
  for (int64_t Threads : {1, 2, 4, 8}) {
    B->Args({64, 8, Threads});
    B->Args({128, 16, Threads});
    B->Args({256, 32, Threads});
    // The acceptance configuration: 8x8 blocks of a 512x512 product
    // (4096 independent tasks). Interpreter-driven, so one iteration is
    // seconds of work; keep iteration counts minimal.
    B->Args({512, 8, Threads});
  }
}

} // namespace

BENCHMARK(BM_ParallelMMM)
    ->Apply(ThreadSweep)
    ->MinTime(0.01)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

SHACKLE_BENCH_MAIN()
