//===- bench_layout.cpp - Logical vs physical blocking (Section 5.3) -----------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Section 5.3 ablation: data shackling only *logically* remaps the array —
// "array C need not be laid out in block order to obtain the benefits of
// blocking this array" — but the physical reshaping is available too. This
// bench measures, at the same 64-block shackle:
//   column-major storage (the paper's default, BLAS/LAPACK convention),
//   tiled block-major storage (physical reshaping; costs an extra integer
//   division per access but makes every block contiguous).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

Workspace makeColMajorWS(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 41);
  WS.addArray(N * N, 42);
  WS.addArray(N * N, 43);
  WS.setParams({N});
  return WS;
}

Workspace makeTiledWS(int64_t N) {
  // Tiled 64x64 storage pads each dimension to a multiple of 64.
  int64_t Tiles = (N + 63) / 64;
  int64_t Size = Tiles * Tiles * 64 * 64;
  Workspace WS;
  WS.addArray(Size, 41);
  WS.addArray(Size, 42);
  WS.addArray(Size, 43);
  WS.setParams({N});
  return WS;
}

void BM_ColMajorBlocked(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeColMajorWS(N);
  runGenKernel(St, "mmm_shackle_cxa_64", WS, mmmFlops(N));
}

void BM_TiledBlocked(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeTiledWS(N);
  runGenKernel(St, "mmm_tiled_cxa_64", WS, mmmFlops(N));
}

void BM_ColMajorInput(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeColMajorWS(N);
  runGenKernel(St, "mmm_orig", WS, mmmFlops(N));
}

void BM_TiledInput(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeTiledWS(N);
  runGenKernel(St, "mmm_tiled_orig", WS, mmmFlops(N));
}

} // namespace

BENCHMARK(BM_ColMajorInput)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TiledInput)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColMajorBlocked)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TiledBlocked)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
