//===- BenchUtil.h - Shared benchmark harness utilities ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: deterministic
/// input generation, pristine/working array pairs (factorizations destroy
/// their input, so every timed iteration starts from a fresh copy), a
/// google-benchmark runner that reports MFlop/s the way the paper's graphs
/// do, and a machine-readable results sink: every benchmark built on
/// SHACKLE_BENCH_MAIN() accepts `--json out.json` and appends one record
/// {name, n, block, threads, ns_per_iter} per benchmark run, so sweep
/// scripts can diff configurations without scraping console output.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_BENCH_BENCHUTIL_H
#define SHACKLE_BENCH_BENCHUTIL_H

#include "shackle_kernels.gen.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace shackle_bench {

/// SplitMix64-based deterministic fill in [Lo, Hi].
inline void fillRandom(std::vector<double> &Buf, uint64_t Seed, double Lo,
                       double Hi) {
  uint64_t X = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  for (double &V : Buf) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    V = Lo + (Hi - Lo) * (static_cast<double>(Z >> 11) * 0x1.0p-53);
  }
}

/// Boosts the diagonal of a dense row-major matrix (SPD / diagonally
/// dominant inputs for factorizations).
inline void boostDiagonal(std::vector<double> &A, int64_t N, double Boost) {
  for (int64_t I = 0; I < N; ++I)
    A[I * N + I] += Boost;
}

/// Boosts the diagonal in LAPACK band storage.
inline void boostBandDiagonal(std::vector<double> &Ab, int64_t N, int64_t BW,
                              double Boost) {
  for (int64_t J = 0; J < N; ++J)
    Ab[J * (BW + 1)] += Boost;
}

/// Pristine inputs plus working copies handed to kernels.
class Workspace {
public:
  /// Adds an array of \p Count doubles filled from \p Seed; returns its id.
  unsigned addArray(size_t Count, uint64_t Seed, double Lo = 0.5,
                    double Hi = 1.5) {
    Init.emplace_back(Count);
    fillRandom(Init.back(), Seed, Lo, Hi);
    Work.emplace_back(Count);
    return Init.size() - 1;
  }

  std::vector<double> &init(unsigned Id) { return Init[Id]; }

  void setParams(std::vector<int64_t> P) { Params = std::move(P); }
  const int64_t *params() const { return Params.data(); }

  /// Restores every working array from its pristine copy.
  void reset() {
    for (size_t I = 0; I < Init.size(); ++I)
      std::memcpy(Work[I].data(), Init[I].data(),
                  Init[I].size() * sizeof(double));
    Ptrs.clear();
    for (std::vector<double> &B : Work)
      Ptrs.push_back(B.data());
  }

  double **arrays() { return Ptrs.data(); }
  std::vector<double> &work(unsigned Id) { return Work[Id]; }

private:
  std::vector<std::vector<double>> Init, Work;
  std::vector<double *> Ptrs;
  std::vector<int64_t> Params;
};

/// Times a generated kernel, reporting MFlop/s. \p Flops is the useful work
/// per invocation.
inline void runGenKernel(benchmark::State &St, const char *Name,
                         Workspace &WS, double Flops) {
  shackle_kernel_fn Fn = shackle_gen_lookup(Name);
  if (!Fn) {
    St.SkipWithError("kernel not found");
    return;
  }
  for (auto _ : St) {
    St.PauseTiming();
    WS.reset();
    St.ResumeTiming();
    Fn(WS.arrays(), WS.params());
    benchmark::ClobberMemory();
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      Flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

/// Times a hand-written kernel (lambda taking the Workspace), reporting
/// MFlop/s.
template <typename Fn>
inline void runHandKernel(benchmark::State &St, Fn &&Body, Workspace &WS,
                          double Flops) {
  for (auto _ : St) {
    St.PauseTiming();
    WS.reset();
    St.ResumeTiming();
    Body(WS);
    benchmark::ClobberMemory();
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      Flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

//===----------------------------------------------------------------------===//
// Machine-readable results (--json out.json)
//===----------------------------------------------------------------------===//

/// Tags a benchmark run with the sweep coordinates the JSON records carry.
/// Pass 0 for axes that do not apply (they are emitted as 0).
inline void setBenchMeta(benchmark::State &St, int64_t N, int64_t Block,
                         int64_t Threads = 1) {
  St.counters["n"] = benchmark::Counter(static_cast<double>(N));
  St.counters["block"] = benchmark::Counter(static_cast<double>(Block));
  St.counters["threads"] = benchmark::Counter(static_cast<double>(Threads));
}

/// Tags a parallel-plan benchmark with its dependence-DAG shape and build
/// cost: node count (tasks), edge count, and the DAG construction time in
/// milliseconds. The JSON sink emits these per record, so flat vs
/// hierarchical coarsening (nodes ratio, build-time ratio) can be diffed
/// directly from the sweep output.
inline void setDagStats(benchmark::State &St, double Nodes, double Edges,
                        double DagBuildMs) {
  St.counters["nodes"] = benchmark::Counter(Nodes);
  St.counters["edges"] = benchmark::Counter(Edges);
  St.counters["dag_build_ms"] = benchmark::Counter(DagBuildMs);
}

/// Tags a parallel-run benchmark with its steal-locality telemetry so the
/// JSON sink records how well the placement policy kept blocks on their
/// home workers: total/local/remote steal counts, the fraction of tasks
/// that executed on their affinity home, and the estimated bytes of block
/// footprint dragged across locality domains.
inline void setLocalityStats(benchmark::State &St, double Steals,
                             double LocalSteals, double HomeHitPct,
                             double BytesMigrated) {
  St.counters["steals"] = benchmark::Counter(Steals);
  St.counters["local_steals"] = benchmark::Counter(LocalSteals);
  St.counters["home_hit_pct"] = benchmark::Counter(HomeHitPct);
  St.counters["bytes_migrated"] = benchmark::Counter(BytesMigrated);
}

/// Tags a parallel-run benchmark with its fault-tolerance telemetry so
/// corruption sweeps are diffable from the JSON output alone: faults
/// injected (from the process-wide FaultInjector counters), rollback
/// retries spent recovering, and whether the run degraded to the serial
/// replay (0/1).
inline void setFaultStats(benchmark::State &St, double FaultsInjected,
                          double Retries, double Degraded) {
  St.counters["faults_injected"] = benchmark::Counter(FaultsInjected);
  St.counters["retries"] = benchmark::Counter(Retries);
  St.counters["degraded"] = benchmark::Counter(Degraded);
}

/// Tags a service benchmark with the plan-cache counters behind the run
/// (docs/SERVE.md): cache hits/misses, single-flight coalesces, and Omega
/// queries avoided through cached verdicts, plus the measured request
/// throughput. The JSON sink emits these per record so cold-vs-warm and
/// client-scaling sweeps diff from the output alone.
inline void setServiceStats(benchmark::State &St, double Hits, double Misses,
                            double Coalesced, double SolverSaved,
                            double ReqPerS) {
  St.counters["hits"] = benchmark::Counter(Hits);
  St.counters["misses"] = benchmark::Counter(Misses);
  St.counters["coalesced"] = benchmark::Counter(Coalesced);
  St.counters["solver_saved"] = benchmark::Counter(SolverSaved);
  St.counters["req_per_s"] = benchmark::Counter(ReqPerS);
}

/// Tags a saturation benchmark with the admission-control telemetry behind
/// one offered-load point (DESIGN.md §14): requests shed with `overloaded`,
/// requests whose deadline expired, the p95 latency over *accepted*
/// requests only (shed replies return in microseconds and would flatter the
/// tail), and goodput — ok replies per second, the number that stays flat
/// past the knee when load shedding works.
inline void setSaturationStats(benchmark::State &St, double Shed,
                               double DeadlineExpired, double AcceptedP95Us,
                               double GoodputReqS) {
  St.counters["shed"] = benchmark::Counter(Shed);
  St.counters["deadline_expired"] = benchmark::Counter(DeadlineExpired);
  St.counters["accepted_p95_us"] = benchmark::Counter(AcceptedP95Us);
  St.counters["goodput_req_s"] = benchmark::Counter(GoodputReqS);
}

/// Tags a benchmark with cache-simulation miss counts accumulated over the
/// per-worker traces of a parallel run (see WorkerTraces).
inline void setWorkerMissStats(benchmark::State &St, double L1Misses,
                               double L2Misses) {
  St.counters["l1_misses"] = benchmark::Counter(L1Misses);
  St.counters["l2_misses"] = benchmark::Counter(L2Misses);
}

/// A ConsoleReporter that also collects one record per completed run, for
/// the --json flag. Aggregates (mean/median of repetitions) are skipped;
/// each raw run is one record.
class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
  struct Record {
    std::string Name;
    int64_t N = 0, Block = 0, Threads = 0;
    double NsPerIter = 0.0;
    /// Dependence-DAG shape for parallel-plan benchmarks (0 when the
    /// benchmark does not set them via setDagStats).
    int64_t Nodes = 0, Edges = 0;
    double DagBuildMs = 0.0;
    /// Steal-locality telemetry (0 unless set via setLocalityStats /
    /// setWorkerMissStats).
    int64_t Steals = 0, LocalSteals = 0;
    double HomeHitPct = 0.0;
    int64_t BytesMigrated = 0;
    int64_t L1Misses = 0, L2Misses = 0;
    /// Fault-tolerance telemetry (0 unless set via setFaultStats).
    int64_t FaultsInjected = 0, Retries = 0, Degraded = 0;
    /// Plan-cache service telemetry (0 unless set via setServiceStats).
    int64_t Hits = 0, Misses = 0, Coalesced = 0, SolverSaved = 0;
    double ReqPerS = 0.0;
    /// Admission-control telemetry (0 unless set via setSaturationStats).
    int64_t Shed = 0, DeadlineExpired = 0;
    double AcceptedP95Us = 0.0, GoodputReqS = 0.0;
  };
  std::vector<Record> Records;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration ||
          R.iterations == 0)
        continue;
      Record Rec;
      Rec.Name = R.benchmark_name();
      auto Counter = [&R](const char *Key) -> int64_t {
        auto It = R.counters.find(Key);
        return It == R.counters.end()
                   ? 0
                   : static_cast<int64_t>(It->second.value);
      };
      Rec.N = Counter("n");
      Rec.Block = Counter("block");
      Rec.Threads = Counter("threads");
      Rec.Nodes = Counter("nodes");
      Rec.Edges = Counter("edges");
      {
        auto It = R.counters.find("dag_build_ms");
        Rec.DagBuildMs = It == R.counters.end() ? 0.0 : It->second.value;
      }
      Rec.Steals = Counter("steals");
      Rec.LocalSteals = Counter("local_steals");
      {
        auto It = R.counters.find("home_hit_pct");
        Rec.HomeHitPct = It == R.counters.end() ? 0.0 : It->second.value;
      }
      Rec.BytesMigrated = Counter("bytes_migrated");
      Rec.L1Misses = Counter("l1_misses");
      Rec.L2Misses = Counter("l2_misses");
      Rec.FaultsInjected = Counter("faults_injected");
      Rec.Retries = Counter("retries");
      Rec.Degraded = Counter("degraded");
      Rec.Hits = Counter("hits");
      Rec.Misses = Counter("misses");
      Rec.Coalesced = Counter("coalesced");
      Rec.SolverSaved = Counter("solver_saved");
      {
        auto It = R.counters.find("req_per_s");
        Rec.ReqPerS = It == R.counters.end() ? 0.0 : It->second.value;
      }
      Rec.Shed = Counter("shed");
      Rec.DeadlineExpired = Counter("deadline_expired");
      {
        auto It = R.counters.find("accepted_p95_us");
        Rec.AcceptedP95Us = It == R.counters.end() ? 0.0 : It->second.value;
      }
      {
        auto It = R.counters.find("goodput_req_s");
        Rec.GoodputReqS = It == R.counters.end() ? 0.0 : It->second.value;
      }
      Rec.NsPerIter = R.real_accumulated_time /
                      static_cast<double>(R.iterations) * 1e9;
      Records.push_back(std::move(Rec));
    }
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }
};

/// Escapes a string for embedding in a JSON literal.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

inline bool writeJsonRecords(const char *Path,
                             const std::vector<JsonTeeReporter::Record> &Rs) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F, "[\n");
  for (size_t I = 0; I < Rs.size(); ++I)
    std::fprintf(F,
                 "  {\"name\": \"%s\", \"n\": %lld, \"block\": %lld, "
                 "\"threads\": %lld, \"ns_per_iter\": %.3f, "
                 "\"nodes\": %lld, \"edges\": %lld, "
                 "\"dag_build_ms\": %.3f, "
                 "\"steals\": %lld, \"local_steals\": %lld, "
                 "\"home_hit_pct\": %.1f, \"bytes_migrated\": %lld, "
                 "\"l1_misses\": %lld, \"l2_misses\": %lld, "
                 "\"faults_injected\": %lld, \"retries\": %lld, "
                 "\"degraded\": %lld, "
                 "\"hits\": %lld, \"misses\": %lld, \"coalesced\": %lld, "
                 "\"solver_saved\": %lld, \"req_per_s\": %.1f, "
                 "\"shed\": %lld, \"deadline_expired\": %lld, "
                 "\"accepted_p95_us\": %.1f, \"goodput_req_s\": %.1f}%s\n",
                 jsonEscape(Rs[I].Name).c_str(),
                 static_cast<long long>(Rs[I].N),
                 static_cast<long long>(Rs[I].Block),
                 static_cast<long long>(Rs[I].Threads), Rs[I].NsPerIter,
                 static_cast<long long>(Rs[I].Nodes),
                 static_cast<long long>(Rs[I].Edges), Rs[I].DagBuildMs,
                 static_cast<long long>(Rs[I].Steals),
                 static_cast<long long>(Rs[I].LocalSteals), Rs[I].HomeHitPct,
                 static_cast<long long>(Rs[I].BytesMigrated),
                 static_cast<long long>(Rs[I].L1Misses),
                 static_cast<long long>(Rs[I].L2Misses),
                 static_cast<long long>(Rs[I].FaultsInjected),
                 static_cast<long long>(Rs[I].Retries),
                 static_cast<long long>(Rs[I].Degraded),
                 static_cast<long long>(Rs[I].Hits),
                 static_cast<long long>(Rs[I].Misses),
                 static_cast<long long>(Rs[I].Coalesced),
                 static_cast<long long>(Rs[I].SolverSaved), Rs[I].ReqPerS,
                 static_cast<long long>(Rs[I].Shed),
                 static_cast<long long>(Rs[I].DeadlineExpired),
                 Rs[I].AcceptedP95Us, Rs[I].GoodputReqS,
                 I + 1 < Rs.size() ? "," : "");
  std::fprintf(F, "]\n");
  std::fclose(F);
  return true;
}

/// main() body behind SHACKLE_BENCH_MAIN(): peels `--json out.json` (or
/// `--json=out.json`) off the command line, forwards everything else to
/// google-benchmark, and writes the collected records on exit.
inline int benchMain(int Argc, char **Argv) {
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
      continue;
    }
    Args.push_back(Argv[I]);
  }
  int NArgs = static_cast<int>(Args.size());
  benchmark::Initialize(&NArgs, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NArgs, Args.data()))
    return 1;
  JsonTeeReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (!JsonPath.empty() &&
      !writeJsonRecords(JsonPath.c_str(), Reporter.Records)) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}

} // namespace shackle_bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the --json flag.
#define SHACKLE_BENCH_MAIN()                                                   \
  int main(int argc, char **argv) {                                            \
    return shackle_bench::benchMain(argc, argv);                               \
  }

#endif // SHACKLE_BENCH_BENCHUTIL_H
