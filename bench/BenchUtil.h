//===- BenchUtil.h - Shared benchmark harness utilities ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: deterministic
/// input generation, pristine/working array pairs (factorizations destroy
/// their input, so every timed iteration starts from a fresh copy), and a
/// google-benchmark runner that reports MFlop/s the way the paper's graphs
/// do.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_BENCH_BENCHUTIL_H
#define SHACKLE_BENCH_BENCHUTIL_H

#include "shackle_kernels.gen.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace shackle_bench {

/// SplitMix64-based deterministic fill in [Lo, Hi].
inline void fillRandom(std::vector<double> &Buf, uint64_t Seed, double Lo,
                       double Hi) {
  uint64_t X = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  for (double &V : Buf) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    V = Lo + (Hi - Lo) * (static_cast<double>(Z >> 11) * 0x1.0p-53);
  }
}

/// Boosts the diagonal of a dense row-major matrix (SPD / diagonally
/// dominant inputs for factorizations).
inline void boostDiagonal(std::vector<double> &A, int64_t N, double Boost) {
  for (int64_t I = 0; I < N; ++I)
    A[I * N + I] += Boost;
}

/// Boosts the diagonal in LAPACK band storage.
inline void boostBandDiagonal(std::vector<double> &Ab, int64_t N, int64_t BW,
                              double Boost) {
  for (int64_t J = 0; J < N; ++J)
    Ab[J * (BW + 1)] += Boost;
}

/// Pristine inputs plus working copies handed to kernels.
class Workspace {
public:
  /// Adds an array of \p Count doubles filled from \p Seed; returns its id.
  unsigned addArray(size_t Count, uint64_t Seed, double Lo = 0.5,
                    double Hi = 1.5) {
    Init.emplace_back(Count);
    fillRandom(Init.back(), Seed, Lo, Hi);
    Work.emplace_back(Count);
    return Init.size() - 1;
  }

  std::vector<double> &init(unsigned Id) { return Init[Id]; }

  void setParams(std::vector<int64_t> P) { Params = std::move(P); }
  const int64_t *params() const { return Params.data(); }

  /// Restores every working array from its pristine copy.
  void reset() {
    for (size_t I = 0; I < Init.size(); ++I)
      std::memcpy(Work[I].data(), Init[I].data(),
                  Init[I].size() * sizeof(double));
    Ptrs.clear();
    for (std::vector<double> &B : Work)
      Ptrs.push_back(B.data());
  }

  double **arrays() { return Ptrs.data(); }
  std::vector<double> &work(unsigned Id) { return Work[Id]; }

private:
  std::vector<std::vector<double>> Init, Work;
  std::vector<double *> Ptrs;
  std::vector<int64_t> Params;
};

/// Times a generated kernel, reporting MFlop/s. \p Flops is the useful work
/// per invocation.
inline void runGenKernel(benchmark::State &St, const char *Name,
                         Workspace &WS, double Flops) {
  shackle_kernel_fn Fn = shackle_gen_lookup(Name);
  if (!Fn) {
    St.SkipWithError("kernel not found");
    return;
  }
  for (auto _ : St) {
    St.PauseTiming();
    WS.reset();
    St.ResumeTiming();
    Fn(WS.arrays(), WS.params());
    benchmark::ClobberMemory();
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      Flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

/// Times a hand-written kernel (lambda taking the Workspace), reporting
/// MFlop/s.
template <typename Fn>
inline void runHandKernel(benchmark::State &St, Fn &&Body, Workspace &WS,
                          double Flops) {
  for (auto _ : St) {
    St.PauseTiming();
    WS.reset();
    St.ResumeTiming();
    Body(WS);
    benchmark::ClobberMemory();
  }
  St.counters["MFlop/s"] = benchmark::Counter(
      Flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace shackle_bench

#endif // SHACKLE_BENCH_BENCHUTIL_H
