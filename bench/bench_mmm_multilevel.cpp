//===- bench_mmm_multilevel.cpp - Paper Figure 10 ------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Figure 10 / Section 6.3: multi-level blocking as a Cartesian product of
// products of shackles, one factor group per memory level. Lines:
//   one-level (C x A)@64                     -> mmm_shackle_cxa_64
//   two-level ((C x A)@64) x ((C x A)@8)     -> mmm_two_level_64_8
//   two-level ((C x A)@128) x ((C x A)@16)   -> mmm_two_level_128_16
//   input code                               -> mmm_orig
//
// The paper's claim is qualitative: the product construction extends to any
// number of levels "in a straightforward fashion" where iteration tiling
// does not. The quantitative expectation on a 2-level cache machine is that
// two-level blocking holds its rate as N grows past the L2-resident size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace shackle_bench;

namespace {

double mmmFlops(int64_t N) {
  double Nd = static_cast<double>(N);
  return 2.0 * Nd * Nd * Nd;
}

Workspace makeMMMWorkspace(int64_t N) {
  Workspace WS;
  WS.addArray(N * N, 41);
  WS.addArray(N * N, 42);
  WS.addArray(N * N, 43);
  WS.setParams({N});
  return WS;
}

void BM_Input(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_orig", WS, mmmFlops(N));
}

void BM_OneLevel64(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_shackle_cxa_64", WS, mmmFlops(N));
}

void BM_TwoLevel64x8(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_two_level_64_8", WS, mmmFlops(N));
}

void BM_TwoLevel128x16(benchmark::State &St) {
  int64_t N = St.range(0);
  Workspace WS = makeMMMWorkspace(N);
  runGenKernel(St, "mmm_two_level_128_16", WS, mmmFlops(N));
}

} // namespace

BENCHMARK(BM_Input)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OneLevel64)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoLevel64x8)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoLevel128x16)->RangeMultiplier(2)->Range(128, 1024)->MinTime(0.05)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
